// Package query implements the paper's query processing algorithms:
//
// AKNN (§3) — ad-hoc k-nearest-neighbor search at a single probability
// threshold α, in four variants of increasing sophistication:
//
//	Basic    best-first R-tree search, support-MBR MinDist lower bounds
//	LB       improved lower bound via conservative boundary-line MBRs (§3.2)
//	LBLP     LB plus lazy probing with a bounded buffer (§3.3)
//	LBLPUB   LBLP plus the representative-point upper bound (§3.4)
//
// RKNN (§4) — range kNN over a probability interval [αs, αe], returning
// qualifying ranges:
//
//	Naive      one AKNN per membership level in the range (reference)
//	BasicRKNN  critical-probability hopping (Algorithm 3)
//	RSS        reduced search space via one AKNN + one range search (Alg. 4)
//	RSSICR     RSS plus improved candidate refinement / safe ranges (Alg. 5)
//
// The Index pairs an in-memory R-tree of per-object summaries with an object
// store; algorithms traverse the tree and charge one "object access" per
// store probe, the paper's headline cost metric.
package query

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/geom"
	"fuzzyknn/internal/pager"
	"fuzzyknn/internal/rtree"
	"fuzzyknn/internal/store"
)

// AKNNAlgorithm selects an AKNN search variant.
type AKNNAlgorithm int

// AKNN variants, in the paper's order.
const (
	Basic AKNNAlgorithm = iota
	LB
	LBLP
	LBLPUB
)

// String returns the paper's name for the algorithm.
func (a AKNNAlgorithm) String() string {
	switch a {
	case Basic:
		return "Basic AKNN"
	case LB:
		return "LB"
	case LBLP:
		return "LB-LP"
	case LBLPUB:
		return "LB-LP-UB"
	}
	return fmt.Sprintf("AKNNAlgorithm(%d)", int(a))
}

// RKNNAlgorithm selects an RKNN search variant.
type RKNNAlgorithm int

// RKNN variants, in the paper's order.
const (
	Naive RKNNAlgorithm = iota
	BasicRKNN
	RSS
	RSSICR
)

// String returns the paper's name for the algorithm.
func (a RKNNAlgorithm) String() string {
	switch a {
	case Naive:
		return "Naive RKNN"
	case BasicRKNN:
		return "Basic RKNN"
	case RSS:
		return "RSS"
	case RSSICR:
		return "RSS-ICR"
	}
	return fmt.Sprintf("RKNNAlgorithm(%d)", int(a))
}

// Stats instruments one query execution.
//
// NodeAccesses counts logical tree-node visits and is identical for
// in-memory and paged execution of the same query over the same tree.
// PageReads/PageCacheHits count the physical page faults behind those
// visits on a paged index (both zero in-memory): a visit of a non-resident
// node is one PageRead, a visit served by the block cache is one
// PageCacheHit. Cache activity never inflates ObjectAccesses — that remains
// purely the paper's store-probe metric.
type Stats struct {
	ObjectAccesses int           // store probes — the paper's primary metric
	NodeAccesses   int           // R-tree nodes visited
	DistanceEvals  int           // exact α-distance computations
	ProfilesBuilt  int           // full distance profiles computed (RKNN)
	AKNNCalls      int           // AKNN sub-searches issued (RKNN)
	Candidates     int           // RKNN candidate set size after pruning
	Pieces         int           // RKNN refinement iterations (plateaus)
	PageReads      int           // index pages fetched from disk (block-cache misses)
	PageCacheHits  int           // index page visits served by the block cache
	Duration       time.Duration // wall time of the public call
}

// addParallel accumulates a concurrently executed sub-query's stats into
// st, excluding Duration: work that overlapped in time must not inflate
// the coordinator's wall clock, which the caller stamps once at the end.
func addParallel(st *Stats, o Stats) {
	o.Duration = 0
	st.Add(o)
}

// Add accumulates o into s (Duration included).
func (s *Stats) Add(o Stats) {
	s.ObjectAccesses += o.ObjectAccesses
	s.NodeAccesses += o.NodeAccesses
	s.DistanceEvals += o.DistanceEvals
	s.ProfilesBuilt += o.ProfilesBuilt
	s.AKNNCalls += o.AKNNCalls
	s.Candidates += o.Candidates
	s.Pieces += o.Pieces
	s.PageReads += o.PageReads
	s.PageCacheHits += o.PageCacheHits
	s.Duration += o.Duration
}

// Options configures index construction.
type Options struct {
	// MinEntries/MaxEntries are R-tree node capacities (0 = defaults).
	MinEntries, MaxEntries int
	// SampleSize is n, the number of points sampled from Q_α for the
	// improved upper bound (§3.4). 0 selects the default of 16.
	SampleSize int
	// SampleSeed makes Q'_α sampling reproducible.
	SampleSeed uint64
	// Incremental builds the tree by repeated insertion instead of STR
	// bulk loading (ablation option; bulk loading is the default).
	Incremental bool
	// Estimator constructs the per-object MBR estimator stored in leaf
	// entries. Nil selects the paper's optimal conservative line
	// (fuzzy.NewBoundaryApprox); fuzzy.NewStaircaseApprox realizes the
	// paper's future-work idea of richer boundary approximations at more
	// storage. Note summary persistence (SaveSummaries) requires the
	// default estimator.
	Estimator func(*fuzzy.Object) fuzzy.MBREstimator
}

func (o Options) withDefaults() Options {
	if o.SampleSize == 0 {
		o.SampleSize = 16
	}
	return o
}

// leafItem is the per-object summary stored in R-tree leaf entries: exactly
// the information §3 keeps in memory — the approximated boundary (support
// MBR, kernel MBR, L_opt lines by default) and the representative kernel
// point.
type leafItem struct {
	id     uint64
	approx fuzzy.MBREstimator
	rep    geom.Point
}

// Index is a search index over a fuzzy object store. It is mutable: Insert
// and Delete add and retire objects while queries keep running.
//
// # Snapshot isolation
//
// Every query entry point atomically loads the current snapshot — an
// immutable R-tree root plus the index dimensionality — and runs entirely
// against it. Writers serialize among themselves, build a copy-on-write
// successor tree (sharing all untouched nodes) and publish it atomically,
// so an in-flight AKNN/RKNN/range query always sees the exact object
// population that was live when it started, never a half-applied mutation.
// Stores retain deleted payloads (see store.Mutator), which keeps the
// snapshot's probes resolvable even after the object was retired.
type Index struct {
	store     store.Reader
	opts      Options
	estimator func(*fuzzy.Object) fuzzy.MBREstimator

	// pageCache is the block cache serving the tree's pages when the index
	// is paged (OpenPagedIndex); nil for fully in-memory indexes. Paged
	// indexes are read-only: their tree shape is bound to the page file.
	pageCache *pager.Cache

	// writeMu serializes Insert/Delete; readers never take it.
	writeMu sync.Mutex
	snap    atomic.Pointer[snapshot]

	// degraded is set (sticky, first fault wins) when the store
	// fail-stops; storageFaults counts every store op refused for that
	// reason. See degraded.go.
	degraded      atomic.Pointer[DegradedState]
	storageFaults atomic.Int64
}

// snapshot is one immutable, consistent view of the index. The tree is
// never mutated after publication (writers clone-and-replace instead).
type snapshot struct {
	tree *rtree.Tree
	dims int
}

// read returns the current snapshot; all reads of one query must go through
// a single read() result to stay consistent.
func (ix *Index) read() *snapshot { return ix.snap.Load() }

// leafIDs returns the ids of every object in the snapshot, ascending. It is
// the snapshot-consistent replacement for store.Reader.IDs. Page faults on
// paged trees are charged to st.
func (s *snapshot) leafIDs(st *Stats) []uint64 {
	out := make([]uint64, 0, s.tree.Len())
	var walk func(n *rtree.Node)
	walk = func(n *rtree.Node) {
		n = resolveNode(n, st)
		for _, e := range n.Entries() {
			if n.Leaf() {
				out = append(out, e.Data.(*leafItem).id)
			} else {
				walk(e.Child)
			}
		}
	}
	walk(s.tree.Root())
	slices.Sort(out)
	return out
}

// resolveEstimator picks the leaf-summary estimator for opts.
func resolveEstimator(opts Options) func(*fuzzy.Object) fuzzy.MBREstimator {
	if opts.Estimator != nil {
		return opts.Estimator
	}
	return func(o *fuzzy.Object) fuzzy.MBREstimator { return fuzzy.NewBoundaryApprox(o) }
}

// newIndex assembles an Index around a freshly built tree.
func newIndex(tree *rtree.Tree, st store.Reader, opts Options) *Index {
	ix := &Index{store: st, opts: opts, estimator: resolveEstimator(opts)}
	ix.snap.Store(&snapshot{tree: tree, dims: st.Dims()})
	return ix
}

// Build scans the store once, computes each object's summary and assembles
// the R-tree (STR bulk load by default).
func Build(st store.Reader, opts Options) (*Index, error) {
	return BuildFiltered(st, opts, nil)
}

// BuildFiltered is Build restricted to the store's ids for which keep
// returns true (nil keeps everything). It is how one shard of a
// hash-partitioned index is built over a store shared by all shards: each
// shard keeps exactly the ids ShardOf assigns to it.
//
// Object decoding and summary computation (the boundary estimator and
// representative point) dominate build time and are embarrassingly
// parallel, so they run across GOMAXPROCS workers; the item order — and
// therefore the resulting tree, whether STR bulk-loaded or incrementally
// inserted — is identical to a serial build.
func BuildFiltered(st store.Reader, opts Options, keep func(uint64) bool) (*Index, error) {
	opts = opts.withDefaults()
	estimator := resolveEstimator(opts)
	var ids []uint64
	for _, id := range st.IDs() {
		if keep == nil || keep(id) {
			ids = append(ids, id)
		}
	}
	items := make([]rtree.BulkItem, len(ids))
	errs := make([]error, len(ids))
	parallelFor(len(ids), func(i int) {
		obj, err := st.Get(ids[i])
		if err != nil {
			errs[i] = err
			return
		}
		li := &leafItem{
			id:     ids[i],
			approx: estimator(obj),
			rep:    obj.Rep(),
		}
		items[i] = rtree.BulkItem{Rect: obj.SupportMBR(), Data: li}
	})
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("query: building index: %w", err)
		}
	}
	var tree *rtree.Tree
	if opts.Incremental {
		tree = rtree.New(opts.MinEntries, opts.MaxEntries)
		for _, it := range items {
			tree.Insert(it.Rect, it.Data)
		}
	} else {
		tree = rtree.BulkLoad(items, opts.MinEntries, opts.MaxEntries)
	}
	return newIndex(tree, st, opts), nil
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return ix.read().tree.Len() }

// Dims returns the dimensionality of indexed objects (0 until the first
// object is known).
func (ix *Index) Dims() int { return ix.read().dims }

// Store exposes the underlying reader (e.g. to fetch result objects).
func (ix *Index) Store() store.Reader { return ix.store }

// Bounds returns the minimum bounding rectangle of the current snapshot's
// objects (the zero Rect when empty).
func (ix *Index) Bounds() geom.Rect { return ix.read().tree.Bounds() }

// CheckInvariants verifies the current snapshot's R-tree structure (entry
// counts, MBR containment, uniform leaf depth); see rtree.CheckInvariants.
// On a paged index the walk faults in every page, so it doubles as a full
// integrity scan of the page file.
func (ix *Index) CheckInvariants() error {
	err := ix.read().tree.CheckInvariants()
	if perr := ix.pagedErr(); perr != nil {
		// A page that failed its CRC degrades to an empty frame, so the
		// walk's structural complaint (stale MBRs, missing entries) is only
		// a symptom — surface the root cause instead.
		return perr
	}
	return err
}

// Stats reports the index's physical layout: a plain Index is one shard.
func (ix *Index) Stats() IndexStats {
	s := ix.read()
	sh := ShardStats{
		Objects:        s.tree.Len(),
		Dims:           s.dims,
		TreeHeight:     s.tree.Height(),
		TreeMaxEntries: s.tree.MaxEntries(),
	}
	if cp, ok := ix.store.(store.Checkpointer); ok {
		if info, can := cp.CheckpointInfo(); can {
			sh.Checkpoint = &info
		}
	}
	if ix.pageCache != nil {
		cs := ix.pageCache.Stats()
		sh.PageCache = &cs
	}
	return IndexStats{Objects: sh.Objects, Dims: sh.Dims, Shards: []ShardStats{sh}}
}

// Checkpoint implements Searcher: it forwards to the store's checkpoint
// side (store.ErrUnsupported when there is none), optionally compacting
// the log afterwards. The index write lock is NOT held — the store's own
// three-phase protocol keeps the snapshot consistent while the writer
// stays live, which is the whole point of checkpointing online.
func (ix *Index) Checkpoint(compact bool) ([]store.CheckpointInfo, error) {
	cp, ok := ix.store.(store.Checkpointer)
	if !ok {
		return nil, fmt.Errorf("query: checkpoint: %w: store %T cannot checkpoint", store.ErrUnsupported, ix.store)
	}
	info, err := cp.Checkpoint()
	if err != nil {
		return nil, fmt.Errorf("query: checkpoint: %w", ix.noteStoreErr(err))
	}
	if compact {
		if info, err = cp.CompactLog(); err != nil {
			return nil, fmt.Errorf("query: compact log: %w", ix.noteStoreErr(err))
		}
	}
	return []store.CheckpointInfo{info}, nil
}

// treeForTest exposes the live snapshot's tree to in-package tests. The
// tree is shared, not a copy: callers must treat it as read-only — mutating
// it would corrupt the published snapshot under concurrent readers. (The
// old exported Tree() accessor was removed for exactly that reason.)
func (ix *Index) treeForTest() *rtree.Tree { return ix.read().tree }

// Insert adds obj to the store and the index. The new object is visible to
// queries that start after Insert returns; queries already in flight
// complete against their snapshot. It fails with ErrInvalidArgument for nil
// or dimensionally mismatched objects, store.ErrDuplicate when the id is
// live, and store.ErrReadOnly when the store has no write side.
func (ix *Index) Insert(obj *fuzzy.Object) error {
	if obj == nil {
		return badArgf("query: insert: nil object")
	}
	if ix.pageCache != nil {
		return fmt.Errorf("query: insert: %w: paged index is read-only", store.ErrReadOnly)
	}
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	s := ix.read()
	if s.dims != 0 && obj.Dims() != s.dims {
		return badArgf("query: insert: object dims %d, index dims %d", obj.Dims(), s.dims)
	}
	m, ok := ix.store.(store.Mutator)
	if !ok {
		return fmt.Errorf("query: insert: %w: store %T has no write side", store.ErrReadOnly, ix.store)
	}
	if err := ix.noteStoreErr(m.Insert(obj)); err != nil {
		return fmt.Errorf("query: insert: %w", err)
	}
	li := &leafItem{id: obj.ID(), approx: ix.estimator(obj), rep: obj.Rep()}
	tree := s.tree.Clone()
	tree.Insert(obj.SupportMBR(), li)
	ix.snap.Store(&snapshot{tree: tree, dims: obj.Dims()})
	return nil
}

// Delete retires the object with the given id from the index and
// tombstones it in the store (the payload stays readable for in-flight
// snapshot queries). It returns store.ErrNotFound for ids that are not
// live and store.ErrReadOnly when the store has no write side. Locating
// the object's rectangle costs one store probe, reported in the returned
// Stats so callers aggregating per-request statistics stay consistent
// with the store's raw access counter.
func (ix *Index) Delete(id uint64) (Stats, error) {
	started := time.Now()
	var st Stats
	if ix.pageCache != nil {
		return st, fmt.Errorf("query: delete: %w: paged index is read-only", store.ErrReadOnly)
	}
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	s := ix.read()
	m, ok := ix.store.(store.Mutator)
	if !ok {
		return st, fmt.Errorf("query: delete: %w: store %T has no write side", store.ErrReadOnly, ix.store)
	}
	obj, err := ix.getObject(id, &st)
	if err != nil {
		return st, fmt.Errorf("query: delete: %w", err)
	}
	// Remove from the tree clone first: it has no durable effect until the
	// snapshot is published, so a miss (tombstoned id whose payload Get
	// still serves, or an unexpected tree/store skew) aborts cleanly
	// before the store is mutated — no divergence window.
	tree := s.tree.Clone()
	if !tree.Delete(obj.SupportMBR(), func(d any) bool { return d.(*leafItem).id == id }) {
		return st, fmt.Errorf("query: delete: %w: id %d not in index", store.ErrNotFound, id)
	}
	if err := ix.noteStoreErr(m.Delete(id)); err != nil {
		// Store refused (e.g. raced liveness); the tree clone is discarded
		// unpublished, so index and store stay consistent.
		return st, fmt.Errorf("query: delete: %w", err)
	}
	ix.snap.Store(&snapshot{tree: tree, dims: s.dims})
	st.Duration = time.Since(started)
	return st, nil
}

// ErrInvalidArgument tags argument-validation failures of the public query
// entry points, letting callers (e.g. an HTTP layer) separate client
// mistakes from execution failures with errors.Is.
var ErrInvalidArgument = errors.New("query: invalid argument")

// invalidArgError carries a specific message while matching
// ErrInvalidArgument under errors.Is.
type invalidArgError struct{ msg string }

func (e *invalidArgError) Error() string { return e.msg }

func (e *invalidArgError) Is(target error) bool { return target == ErrInvalidArgument }

// badArgf builds an argument-validation error.
func badArgf(format string, args ...any) error {
	return &invalidArgError{msg: fmt.Sprintf(format, args...)}
}

// validateQuery checks arguments shared by all query entry points against
// one snapshot. The dims check keys off the snapshot's dimensionality, not
// its population: an index that was ever told its dimensionality (a typed
// but empty store, or a populated-then-drained dynamic index) rejects
// mismatched query objects consistently.
func (ix *Index) validateQuery(s *snapshot, q *fuzzy.Object, k int, alphas ...float64) error {
	return validateArgs(s.dims, q, k, alphas...)
}

// validateArgs is the shared argument check behind validateQuery, also used
// by the sharded coordinator (whose dimensionality spans shards).
func validateArgs(dims int, q *fuzzy.Object, k int, alphas ...float64) error {
	if q == nil {
		return badArgf("query: nil query object")
	}
	if dims != 0 && q.Dims() != dims {
		return badArgf("query: query dims %d, index dims %d", q.Dims(), dims)
	}
	if k < 1 {
		return badArgf("query: k must be >= 1, got %d", k)
	}
	for _, a := range alphas {
		if !(a > 0 && a <= 1) {
			return badArgf("query: alpha must be in (0, 1], got %v", a)
		}
	}
	return nil
}

// getObject probes the store, charging the access to st.
func (ix *Index) getObject(id uint64, st *Stats) (*fuzzy.Object, error) {
	st.ObjectAccesses++
	return ix.store.Get(id)
}
