// Package query implements the paper's query processing algorithms:
//
// AKNN (§3) — ad-hoc k-nearest-neighbor search at a single probability
// threshold α, in four variants of increasing sophistication:
//
//	Basic    best-first R-tree search, support-MBR MinDist lower bounds
//	LB       improved lower bound via conservative boundary-line MBRs (§3.2)
//	LBLP     LB plus lazy probing with a bounded buffer (§3.3)
//	LBLPUB   LBLP plus the representative-point upper bound (§3.4)
//
// RKNN (§4) — range kNN over a probability interval [αs, αe], returning
// qualifying ranges:
//
//	Naive      one AKNN per membership level in the range (reference)
//	BasicRKNN  critical-probability hopping (Algorithm 3)
//	RSS        reduced search space via one AKNN + one range search (Alg. 4)
//	RSSICR     RSS plus improved candidate refinement / safe ranges (Alg. 5)
//
// The Index pairs an in-memory R-tree of per-object summaries with an object
// store; algorithms traverse the tree and charge one "object access" per
// store probe, the paper's headline cost metric.
package query

import (
	"errors"
	"fmt"
	"time"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/geom"
	"fuzzyknn/internal/rtree"
	"fuzzyknn/internal/store"
)

// AKNNAlgorithm selects an AKNN search variant.
type AKNNAlgorithm int

// AKNN variants, in the paper's order.
const (
	Basic AKNNAlgorithm = iota
	LB
	LBLP
	LBLPUB
)

// String returns the paper's name for the algorithm.
func (a AKNNAlgorithm) String() string {
	switch a {
	case Basic:
		return "Basic AKNN"
	case LB:
		return "LB"
	case LBLP:
		return "LB-LP"
	case LBLPUB:
		return "LB-LP-UB"
	}
	return fmt.Sprintf("AKNNAlgorithm(%d)", int(a))
}

// RKNNAlgorithm selects an RKNN search variant.
type RKNNAlgorithm int

// RKNN variants, in the paper's order.
const (
	Naive RKNNAlgorithm = iota
	BasicRKNN
	RSS
	RSSICR
)

// String returns the paper's name for the algorithm.
func (a RKNNAlgorithm) String() string {
	switch a {
	case Naive:
		return "Naive RKNN"
	case BasicRKNN:
		return "Basic RKNN"
	case RSS:
		return "RSS"
	case RSSICR:
		return "RSS-ICR"
	}
	return fmt.Sprintf("RKNNAlgorithm(%d)", int(a))
}

// Stats instruments one query execution.
type Stats struct {
	ObjectAccesses int           // store probes — the paper's primary metric
	NodeAccesses   int           // R-tree nodes visited
	DistanceEvals  int           // exact α-distance computations
	ProfilesBuilt  int           // full distance profiles computed (RKNN)
	AKNNCalls      int           // AKNN sub-searches issued (RKNN)
	Candidates     int           // RKNN candidate set size after pruning
	Pieces         int           // RKNN refinement iterations (plateaus)
	Duration       time.Duration // wall time of the public call
}

// Add accumulates o into s (Duration included).
func (s *Stats) Add(o Stats) {
	s.ObjectAccesses += o.ObjectAccesses
	s.NodeAccesses += o.NodeAccesses
	s.DistanceEvals += o.DistanceEvals
	s.ProfilesBuilt += o.ProfilesBuilt
	s.AKNNCalls += o.AKNNCalls
	s.Candidates += o.Candidates
	s.Pieces += o.Pieces
	s.Duration += o.Duration
}

// Options configures index construction.
type Options struct {
	// MinEntries/MaxEntries are R-tree node capacities (0 = defaults).
	MinEntries, MaxEntries int
	// SampleSize is n, the number of points sampled from Q_α for the
	// improved upper bound (§3.4). 0 selects the default of 16.
	SampleSize int
	// SampleSeed makes Q'_α sampling reproducible.
	SampleSeed uint64
	// Incremental builds the tree by repeated insertion instead of STR
	// bulk loading (ablation option; bulk loading is the default).
	Incremental bool
	// Estimator constructs the per-object MBR estimator stored in leaf
	// entries. Nil selects the paper's optimal conservative line
	// (fuzzy.NewBoundaryApprox); fuzzy.NewStaircaseApprox realizes the
	// paper's future-work idea of richer boundary approximations at more
	// storage. Note summary persistence (SaveSummaries) requires the
	// default estimator.
	Estimator func(*fuzzy.Object) fuzzy.MBREstimator
}

func (o Options) withDefaults() Options {
	if o.SampleSize == 0 {
		o.SampleSize = 16
	}
	return o
}

// leafItem is the per-object summary stored in R-tree leaf entries: exactly
// the information §3 keeps in memory — the approximated boundary (support
// MBR, kernel MBR, L_opt lines by default) and the representative kernel
// point.
type leafItem struct {
	id     uint64
	approx fuzzy.MBREstimator
	rep    geom.Point
}

// Index is an immutable search index over a fuzzy object store.
type Index struct {
	tree  *rtree.Tree
	store store.Reader
	opts  Options
	dims  int
}

// Build scans the store once, computes each object's summary and assembles
// the R-tree (STR bulk load by default).
func Build(st store.Reader, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	estimator := opts.Estimator
	if estimator == nil {
		estimator = func(o *fuzzy.Object) fuzzy.MBREstimator { return fuzzy.NewBoundaryApprox(o) }
	}
	ids := st.IDs()
	items := make([]rtree.BulkItem, 0, len(ids))
	for _, id := range ids {
		obj, err := st.Get(id)
		if err != nil {
			return nil, fmt.Errorf("query: building index: %w", err)
		}
		li := &leafItem{
			id:     id,
			approx: estimator(obj),
			rep:    obj.Rep(),
		}
		items = append(items, rtree.BulkItem{Rect: obj.SupportMBR(), Data: li})
	}
	var tree *rtree.Tree
	if opts.Incremental {
		tree = rtree.New(opts.MinEntries, opts.MaxEntries)
		for _, it := range items {
			tree.Insert(it.Rect, it.Data)
		}
	} else {
		tree = rtree.BulkLoad(items, opts.MinEntries, opts.MaxEntries)
	}
	return &Index{tree: tree, store: st, opts: opts, dims: st.Dims()}, nil
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return ix.tree.Len() }

// Dims returns the dimensionality of indexed objects.
func (ix *Index) Dims() int { return ix.dims }

// Store exposes the underlying reader (e.g. to fetch result objects).
func (ix *Index) Store() store.Reader { return ix.store }

// Tree exposes the R-tree for diagnostics and tests.
func (ix *Index) Tree() *rtree.Tree { return ix.tree }

// ErrInvalidArgument tags argument-validation failures of the public query
// entry points, letting callers (e.g. an HTTP layer) separate client
// mistakes from execution failures with errors.Is.
var ErrInvalidArgument = errors.New("query: invalid argument")

// invalidArgError carries a specific message while matching
// ErrInvalidArgument under errors.Is.
type invalidArgError struct{ msg string }

func (e *invalidArgError) Error() string { return e.msg }

func (e *invalidArgError) Is(target error) bool { return target == ErrInvalidArgument }

// badArgf builds an argument-validation error.
func badArgf(format string, args ...any) error {
	return &invalidArgError{msg: fmt.Sprintf(format, args...)}
}

// validateQuery checks arguments shared by all query entry points.
func (ix *Index) validateQuery(q *fuzzy.Object, k int, alphas ...float64) error {
	if q == nil {
		return badArgf("query: nil query object")
	}
	if q.Dims() != ix.dims && ix.tree.Len() > 0 {
		return badArgf("query: query dims %d, index dims %d", q.Dims(), ix.dims)
	}
	if k < 1 {
		return badArgf("query: k must be >= 1, got %d", k)
	}
	for _, a := range alphas {
		if !(a > 0 && a <= 1) {
			return badArgf("query: alpha must be in (0, 1], got %v", a)
		}
	}
	return nil
}

// getObject probes the store, charging the access to st.
func (ix *Index) getObject(id uint64, st *Stats) (*fuzzy.Object, error) {
	st.ObjectAccesses++
	return ix.store.Get(id)
}
