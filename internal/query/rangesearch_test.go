package query

import (
	"math"
	"math/rand/v2"
	"testing"

	"fuzzyknn/internal/fuzzy"
)

func TestPublicRangeSearchMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 1))
	objs := makeObjects(rng, 80, 12, 12, 8)
	ix := buildIndex(t, objs, Options{})
	q := makeQuery(rng, 12, 12, 8)
	for _, radius := range []float64{0, 1, 3, 50} {
		res, st, err := ix.RangeSearch(q, 0.5, radius)
		if err != nil {
			t.Fatal(err)
		}
		want := map[uint64]float64{}
		for _, o := range objs {
			if d := fuzzy.AlphaDist(o, q, 0.5); d <= radius {
				want[o.ID()] = d
			}
		}
		if len(res) != len(want) {
			t.Fatalf("radius %v: %d results, want %d", radius, len(res), len(want))
		}
		for i, r := range res {
			if wd, ok := want[r.ID]; !ok || math.Abs(r.Dist-wd) > 1e-9 {
				t.Fatalf("radius %v: result %d = %+v, want dist %v", radius, i, r, wd)
			}
			if i > 0 && res[i-1].Dist > r.Dist {
				t.Fatalf("results not sorted at %d", i)
			}
			if !r.Exact {
				t.Fatalf("range results must be exact")
			}
		}
		if st.Duration <= 0 {
			t.Fatal("no duration recorded")
		}
	}
}

func TestPublicRangeSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(78, 2))
	objs := makeObjects(rng, 10, 8, 10, 4)
	ix := buildIndex(t, objs, Options{})
	q := makeQuery(rng, 8, 10, 4)
	if _, _, err := ix.RangeSearch(q, 0.5, -1); err == nil {
		t.Error("negative radius accepted")
	}
	if _, _, err := ix.RangeSearch(q, 0, 1); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, _, err := ix.RangeSearch(q, 0.5, math.NaN()); err == nil {
		t.Error("NaN radius accepted")
	}
}

func TestPublicRangeSearchZeroRadiusFindsOverlaps(t *testing.T) {
	// Objects whose cuts overlap the query have distance exactly 0.
	rng := rand.New(rand.NewPCG(79, 3))
	objs := makeObjects(rng, 120, 15, 8, 8) // small space: overlaps frequent
	ix := buildIndex(t, objs, Options{})
	q := makeQuery(rng, 15, 8, 8)
	res, _, err := ix.RangeSearch(q, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Dist != 0 {
			t.Fatalf("zero-radius result with dist %v", r.Dist)
		}
	}
}
