package query

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/store"
)

// flakyStore wraps a Reader and fails Get for selected ids or after a
// countdown, exercising error propagation through every algorithm.
type flakyStore struct {
	store.Reader
	failID    uint64
	failAfter int // fail every Get once the countdown reaches zero; -1 = off
	calls     int
}

var errInjected = errors.New("injected storage failure")

func (f *flakyStore) Get(id uint64) (*fuzzy.Object, error) {
	f.calls++
	if f.failID != 0 && id == f.failID {
		return nil, fmt.Errorf("%w: id %d", errInjected, id)
	}
	if f.failAfter >= 0 && f.calls > f.failAfter {
		return nil, fmt.Errorf("%w: call %d", errInjected, f.calls)
	}
	return f.Reader.Get(id)
}

func buildFlaky(t *testing.T, objs []*fuzzy.Object) (*Index, *flakyStore) {
	t.Helper()
	ms, err := store.NewMemStore(objs)
	if err != nil {
		t.Fatal(err)
	}
	fs := &flakyStore{Reader: ms, failAfter: -1}
	ix, err := Build(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ix, fs
}

func TestBuildPropagatesStoreErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	objs := makeObjects(rng, 10, 8, 10, 4)
	ms, err := store.NewMemStore(objs)
	if err != nil {
		t.Fatal(err)
	}
	fs := &flakyStore{Reader: ms, failID: objs[5].ID(), failAfter: -1}
	if _, err := Build(fs, Options{}); !errors.Is(err, errInjected) {
		t.Fatalf("Build error = %v, want injected failure", err)
	}
}

func TestAKNNPropagatesProbeErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	objs := makeObjects(rng, 30, 10, 6, 8) // dense: everything is a candidate
	ix, fs := buildFlaky(t, objs)
	q := makeQuery(rng, 10, 6, 8)
	// Fail a specific object that a full-k query must probe.
	fs.failID = objs[0].ID()
	fs.calls = 0
	for _, algo := range []AKNNAlgorithm{Basic, LB, LBLP, LBLPUB} {
		if _, _, err := ix.AKNN(q, 30, 0.5, algo); !errors.Is(err, errInjected) {
			t.Fatalf("%v: err = %v, want injected failure", algo, err)
		}
	}
	if _, _, err := ix.LinearScanAKNN(q, 5, 0.5); !errors.Is(err, errInjected) {
		t.Fatalf("linear scan err = %v", err)
	}
}

func TestRKNNPropagatesProbeErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	objs := makeObjects(rng, 25, 10, 6, 8)
	ix, fs := buildFlaky(t, objs)
	q := makeQuery(rng, 10, 6, 8)
	for _, algo := range []RKNNAlgorithm{Naive, BasicRKNN, RSS, RSSICR} {
		fs.failID = 0
		fs.calls = 0
		fs.failAfter = 3 // fail mid-acquisition
		if _, _, err := ix.RKNN(q, 20, 0.3, 0.7, algo); !errors.Is(err, errInjected) {
			t.Fatalf("%v: err = %v, want injected failure", algo, err)
		}
		fs.failAfter = -1
	}
}

func TestRefinePropagatesErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	objs := makeObjects(rng, 20, 10, 6, 8)
	ix, fs := buildFlaky(t, objs)
	q := makeQuery(rng, 10, 6, 8)
	res, _, err := ix.AKNN(q, 10, 0.5, LBLPUB)
	if err != nil {
		t.Fatal(err)
	}
	hasUnprobed := false
	for _, r := range res {
		if !r.Exact {
			hasUnprobed = true
			fs.failID = r.ID
			break
		}
	}
	if !hasUnprobed {
		t.Skip("no unprobed results in this configuration")
	}
	if _, _, err := ix.Refine(q, 0.5, res); !errors.Is(err, errInjected) {
		t.Fatalf("Refine err = %v, want injected failure", err)
	}
}

func TestQueriesRecoverAfterTransientFailure(t *testing.T) {
	// A failure on one query must not corrupt the index for the next.
	rng := rand.New(rand.NewPCG(5, 5))
	objs := makeObjects(rng, 30, 10, 6, 8)
	ix, fs := buildFlaky(t, objs)
	q := makeQuery(rng, 10, 6, 8)

	fs.failAfter = 2
	fs.calls = 0
	if _, _, err := ix.AKNN(q, 30, 0.5, LB); !errors.Is(err, errInjected) {
		t.Fatalf("expected injected failure, got %v", err)
	}
	fs.failAfter = -1
	fs.calls = 0
	got, _, err := ix.AKNN(q, 5, 0.5, LB)
	if err != nil {
		t.Fatalf("query after recovery failed: %v", err)
	}
	want, _, err := ix.LinearScanAKNN(q, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	checkSameDistances(t, got, want, "post-recovery")
}
