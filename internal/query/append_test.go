package query

import (
	"math/rand/v2"
	"testing"

	"fuzzyknn/internal/fuzzy"
)

// TestAKNNAppendPreservesPrefix pins the append contract: a non-empty dst
// keeps its prefix untouched, the search counts only its own emissions
// toward k, and only the appended suffix is sorted.
func TestAKNNAppendPreservesPrefix(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	ix := buildIndex(t, makeObjects(rng, 200, 24, 10, 8), Options{})
	q := makeQuery(rng, 24, 10, 8)
	want, _, err := ix.AKNN(q, 5, 0.5, LB)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := []Result{
		{ID: 999999, Dist: -1, Exact: true, Lower: -1, Upper: -1},
		{ID: 999998, Dist: -2, Exact: true, Lower: -2, Upper: -2},
	}
	dst := append([]Result(nil), sentinel...)
	got, _, err := ix.AKNNAppend(dst, q, 5, 0.5, LB)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sentinel)+len(want) {
		t.Fatalf("appended %d results, want %d prefix + %d answers", len(got), len(sentinel), len(want))
	}
	for i, s := range sentinel {
		if got[i] != s {
			t.Fatalf("prefix element %d disturbed: %+v", i, got[i])
		}
	}
	if err := equalResults(got[len(sentinel):], want); err != nil {
		t.Fatalf("appended suffix diverges from AKNN: %v", err)
	}
}

// TestJoinScratchReuseAcrossAlphas pins the DistEval invalidation fix: a
// pooled evaluator pinned to (object, α) by a previous join must not leak
// its α or memo into a later join over the same (pointer-stable) objects
// at a different α.
func TestJoinScratchReuseAcrossAlphas(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 13))
	objs := makeObjects(rng, 60, 12, 8, 6)
	ix := buildIndex(t, objs, Options{})

	for _, alpha := range []float64{0.9, 0.3, 0.7} { // reuse the pool across αs
		pairs, _, err := DistanceJoin(ix, ix, alpha, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		byID := map[uint64]*fuzzy.Object{}
		for _, o := range objs {
			byID[o.ID()] = o
		}
		want := map[[2]uint64]float64{}
		for i, a := range objs {
			for _, b := range objs[i+1:] {
				if d := fuzzy.AlphaDist(a, b, alpha); d <= 1.0 {
					l, r := a.ID(), b.ID()
					if l > r {
						l, r = r, l
					}
					want[[2]uint64{l, r}] = d
				}
			}
		}
		if len(pairs) != len(want) {
			t.Fatalf("alpha=%v: %d pairs, want %d", alpha, len(pairs), len(want))
		}
		for _, p := range pairs {
			if wd, ok := want[[2]uint64{p.LeftID, p.RightID}]; !ok || wd != p.Dist {
				t.Fatalf("alpha=%v: pair (%d,%d) dist %v, want %v (stale evaluator pin?)",
					alpha, p.LeftID, p.RightID, p.Dist, wd)
			}
		}
		// k-closest-pairs worker has the same conditional-reset pattern.
		kp, _, err := KClosestPairs(ix, ix, 5, alpha)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range kp {
			a, b := byID[p.LeftID], byID[p.RightID]
			if d := fuzzy.AlphaDist(a, b, alpha); d != p.Dist {
				t.Fatalf("alpha=%v: k-closest pair (%d,%d) dist %v, want %v",
					alpha, p.LeftID, p.RightID, p.Dist, d)
			}
		}
	}
}
