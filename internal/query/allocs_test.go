package query

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"fuzzyknn/internal/fuzzy"
)

// The zero-allocation pins. The tentpole property of the scratch-pooled
// query path is that a steady-state query — same shapes as the previous
// one, buffers warm, result destination reused — performs no heap
// allocations at all. testing.AllocsPerRun pins that at exactly 0 for the
// AKNN loop (all four variants), the α-range search and the RKNN RSS
// variants; any future per-visit allocation sneaking into the hot path
// fails these tests rather than silently eroding throughput.

// allocEnv builds a small fixed workload for the pins. The pins skip under
// -race: the race runtime deliberately randomizes sync.Pool reuse (puts are
// dropped to surface races), so pooled scratch cannot stay warm there.
func allocEnv(t *testing.T) (*Index, *fuzzy.Object) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation pins are meaningless under -race (sync.Pool reuse is randomized)")
	}
	rng := rand.New(rand.NewPCG(3, 9))
	objs := makeObjects(rng, 300, 32, 10, 8)
	ix := buildIndex(t, objs, Options{})
	return ix, makeQuery(rng, 32, 10, 8)
}

func TestAKNNSteadyStateZeroAllocs(t *testing.T) {
	ix, q := allocEnv(t)
	for _, algo := range []AKNNAlgorithm{Basic, LB, LBLP, LBLPUB} {
		t.Run(algo.String(), func(t *testing.T) {
			var dst []Result
			warm := func() {
				var err error
				dst, _, err = ix.AKNNAppend(dst[:0], q, 8, 0.5, algo)
				if err != nil {
					t.Fatal(err)
				}
			}
			// Warm the scratch pool and the destination buffer to the
			// workload's high-water mark.
			for i := 0; i < 3; i++ {
				warm()
			}
			if allocs := testing.AllocsPerRun(50, warm); allocs != 0 {
				t.Fatalf("steady-state AKNN (%v): %v allocs/op, want 0", algo, allocs)
			}
		})
	}
}

func TestRangeSearchSteadyStateZeroAllocs(t *testing.T) {
	ix, q := allocEnv(t)
	var dst []Result
	warm := func() {
		var err error
		dst, _, err = ix.RangeSearchAppend(dst[:0], q, 0.5, 2.0)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		warm()
	}
	if len(dst) == 0 {
		t.Fatal("range search found nothing; radius too small for the pin to mean anything")
	}
	if allocs := testing.AllocsPerRun(50, warm); allocs != 0 {
		t.Fatalf("steady-state range search: %v allocs/op, want 0", allocs)
	}
}

func TestRKNNSteadyStateZeroAllocs(t *testing.T) {
	ix, q := allocEnv(t)
	for _, algo := range []RKNNAlgorithm{RSS, RSSICR} {
		t.Run(algo.String(), func(t *testing.T) {
			var dst []RangedResult
			warm := func() {
				var err error
				dst, _, err = ix.RKNNAppend(dst[:0], q, 8, 0.4, 0.6, algo)
				if err != nil {
					t.Fatal(err)
				}
			}
			// The first runs pay the (object, query) profile constructions;
			// the steady state serves them from the scratch's profile cache.
			for i := 0; i < 3; i++ {
				warm()
			}
			if len(dst) == 0 {
				t.Fatal("RKNN returned nothing; pin is vacuous")
			}
			if allocs := testing.AllocsPerRun(50, warm); allocs != 0 {
				t.Fatalf("steady-state RKNN (%v): %v allocs/op, want 0", algo, allocs)
			}
		})
	}
}

// TestScratchReuseNoLeak drives many concurrent interleaved queries of
// different kinds through the shared scratch pool and checks every answer
// against a serial reference — under -race this doubles as the proof that
// pooled scratch never leaks state (results, maps, evaluator pins) across
// concurrent queries.
func TestScratchReuseNoLeak(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 23))
	objs := makeObjects(rng, 240, 24, 10, 8)
	ix := buildIndex(t, objs, Options{})

	const clients = 8
	queries := make([]*fuzzy.Object, clients)
	for i := range queries {
		queries[i] = makeQuery(rng, 24, 10, 8)
	}
	type ref struct {
		aknn []Result
		rng  []Result
		rknn []RangedResult
	}
	refs := make([]ref, clients)
	for i, q := range queries {
		var err error
		if refs[i].aknn, _, err = ix.AKNN(q, 6, 0.5, LBLPUB); err != nil {
			t.Fatal(err)
		}
		if refs[i].rng, _, err = ix.RangeSearch(q, 0.5, 2.0); err != nil {
			t.Fatal(err)
		}
		if refs[i].rknn, _, err = ix.RKNN(q, 6, 0.4, 0.6, RSSICR); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := queries[i]
			var dstA []Result
			var dstR []Result
			var dstK []RangedResult
			for iter := 0; iter < 30; iter++ {
				var err error
				// Reused destinations + pooled scratch, interleaved with
				// every other goroutine doing the same.
				if dstA, _, err = ix.AKNNAppend(dstA[:0], q, 6, 0.5, LBLPUB); err != nil {
					errs <- err
					return
				}
				if dstR, _, err = ix.RangeSearchAppend(dstR[:0], q, 0.5, 2.0); err != nil {
					errs <- err
					return
				}
				if dstK, _, err = ix.RKNNAppend(dstK[:0], q, 6, 0.4, 0.6, RSSICR); err != nil {
					errs <- err
					return
				}
				if err := equalResults(dstA, refs[i].aknn); err != nil {
					errs <- fmt.Errorf("client %d iter %d aknn: %w", i, iter, err)
					return
				}
				if err := equalResults(dstR, refs[i].rng); err != nil {
					errs <- fmt.Errorf("client %d iter %d range: %w", i, iter, err)
					return
				}
				if err := equalRanged(dstK, refs[i].rknn); err != nil {
					errs <- fmt.Errorf("client %d iter %d rknn: %w", i, iter, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func equalResults(got, want []Result) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}

func equalRanged(got, want []RangedResult) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || !got[i].Qualifying.Equal(want[i].Qualifying) {
			return fmt.Errorf("result %d = %v %v, want %v %v",
				i, got[i].ID, got[i].Qualifying, want[i].ID, want[i].Qualifying)
		}
	}
	return nil
}
