package query

import (
	"math"
	"math/rand/v2"
	"testing"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/geom"
)

func TestExpectedDistKNNMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(701, 1))
	objs := makeObjects(rng, 40, 12, 10, 8)
	ix := buildIndex(t, objs, Options{})
	q := makeQuery(rng, 12, 10, 8)
	got, st, err := ExpectedDistKNN(ix, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		id uint64
		e  float64
	}
	var want []pair
	for _, o := range objs {
		want = append(want, pair{o.ID(), fuzzy.ExpectedDist(o, q)})
	}
	for i := range want {
		for j := i + 1; j < len(want); j++ {
			if want[j].e < want[i].e || (want[j].e == want[i].e && want[j].id < want[i].id) {
				want[i], want[j] = want[j], want[i]
			}
		}
	}
	if len(got) != 5 {
		t.Fatalf("got %d results", len(got))
	}
	for i := range got {
		if got[i].ID != want[i].id || math.Abs(got[i].Dist-want[i].e) > 1e-9 {
			t.Fatalf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if st.ObjectAccesses != 40 || st.ProfilesBuilt != 40 {
		t.Fatalf("stats = %+v, expected exhaustive scan", st)
	}
}

// TestExpectedVsAlphaSemantics reproduces the paper's §2.1 argument as a
// concrete disagreement: an object whose low-probability fringe nearly
// touches the query is the α-distance 1NN at a low threshold, but the
// integrated metric ranks a farther crisp object first.
func TestExpectedVsAlphaSemantics(t *testing.T) {
	q := fuzzy.MustNew(100, []fuzzy.WeightedPoint{{P: geom.Point{0, 0}, Mu: 1}})
	// Fringe-close: kernel at distance 10, a µ=0.1 point at distance 0.5.
	fringe := fuzzy.MustNew(1, []fuzzy.WeightedPoint{
		{P: geom.Point{10, 0}, Mu: 1},
		{P: geom.Point{0.5, 0}, Mu: 0.1},
	})
	// Crisp: a single kernel point at distance 4.
	crisp := fuzzy.MustNew(2, []fuzzy.WeightedPoint{{P: geom.Point{4, 0}, Mu: 1}})
	ix := buildIndex(t, []*fuzzy.Object{fringe, crisp}, Options{})

	// α-distance at α = 0.1: the fringe object wins (0.5 < 4).
	res, _, err := ix.AKNN(q, 1, 0.1, LB)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 1 {
		t.Fatalf("α-kNN at 0.1 picked %d, want the fringe object", res[0].ID)
	}

	// Expected distance: E(fringe) = 0.1·0.5 + 0.9·10 = 9.05 > E(crisp) = 4.
	eres, _, err := ExpectedDistKNN(ix, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eres[0].ID != 2 {
		t.Fatalf("expected-distance kNN picked %d, want the crisp object", eres[0].ID)
	}
	if math.Abs(eres[0].Dist-4) > 1e-9 {
		t.Fatalf("E(crisp) = %v, want 4", eres[0].Dist)
	}
}

func TestExpectedDistKNNEdge(t *testing.T) {
	rng := rand.New(rand.NewPCG(703, 2))
	empty := buildIndex(t, nil, Options{})
	q := makeQuery(rng, 10, 10, 4)
	got, _, err := ExpectedDistKNN(empty, q, 3)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty index: %d results, err %v", len(got), err)
	}
	ix := buildIndex(t, makeObjects(rng, 4, 8, 10, 4), Options{})
	got, _, err = ExpectedDistKNN(ix, q, 10)
	if err != nil || len(got) != 4 {
		t.Fatalf("k > N: %d results, err %v", len(got), err)
	}
	if _, _, err := ExpectedDistKNN(ix, q, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
