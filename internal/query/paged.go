package query

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/geom"
	"fuzzyknn/internal/hull"
	"fuzzyknn/internal/pager"
	"fuzzyknn/internal/rtree"
	"fuzzyknn/internal/store"
)

// Paged indexes: the R-tree is serialized into fixed-size CRC'd pages (one
// node per page, ids assigned in pre-order so every child page id exceeds
// its parent's — page graphs are acyclic by construction) and served
// through a block cache. OpenPagedIndex keeps only the root node resident;
// interior entries hold stub nodes that traversals resolve on visit, so
// best-first search faults in exactly the pages its priority order reaches.
//
// The page payloads reuse the summary-file record layout for leaves (id,
// support/kernel MBRs, boundary lines, representative point — bitwise
// identical floats), and interior records are the exact entry MBR plus the
// child's page id. Because the serialized tree preserves the in-memory tree
// shape node for node, a paged index returns byte-identical answers and
// identical NodeAccesses counts; only the new PageReads/PageCacheHits stats
// differ from zero.

// ErrPagedMismatch reports a page file that does not describe the given
// store (different dimensionality or object count).
var ErrPagedMismatch = errors.New("query: page file does not match store")

// interiorRecordSize is the fixed per-entry record size of interior pages:
// the entry MBR plus the child page id.
func interiorRecordSize(d int) int { return 2*d*8 + 4 }

// pagePayloadSize returns the payload capacity one node needs at the given
// dimensionality and fan-out.
func pagePayloadSize(d, maxEntries int) int {
	rec := summaryRecordSize(d)
	if ir := interiorRecordSize(d); ir > rec {
		rec = ir
	}
	return rec * maxEntries
}

// SavePaged serializes the current snapshot's R-tree to a page file at path
// (manifest at path+".manifest") via the temp+fsync+rename discipline. Like
// SaveSummaries it requires the default boundary estimator — only the
// paper's linear approximation has a persistent form. The saved tree keeps
// the snapshot's exact shape, so OpenPagedIndex serves byte-identical
// answers with identical node-access counts.
func (ix *Index) SavePaged(path string) error {
	s := ix.read()
	d := s.dims
	tree := s.tree

	// Number nodes in pre-order, resolving any page-backed nodes once and
	// retaining them until their page is written.
	type savedNode struct {
		n        *rtree.Node
		children []uint32
	}
	var nodes []savedNode
	var visit func(n *rtree.Node) uint32
	visit = func(n *rtree.Node) uint32 {
		id := uint32(len(nodes))
		nodes = append(nodes, savedNode{n: n})
		if !n.Leaf() {
			kids := make([]uint32, len(n.Entries()))
			for i, e := range n.Entries() {
				kids[i] = visit(e.Child.Resolve(nil))
			}
			nodes[id].children = kids
		}
		return id
	}
	visit(tree.Root().Resolve(nil))

	min, max := ix.opts.MinEntries, tree.MaxEntries()
	if min == 0 {
		min = rtree.DefaultMinEntries
	}
	if min > max {
		min = max
	}
	w, err := pager.NewWriter(path, uint32(pager.PageHeaderSize+pagePayloadSize(d, max)))
	if err != nil {
		return err
	}
	payload := make([]byte, 0, pagePayloadSize(d, max))
	appendFloat := func(v float64) { payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(v)) }
	appendRect := func(r geom.Rect) {
		for i := 0; i < d; i++ {
			appendFloat(r.Lo[i])
		}
		for i := 0; i < d; i++ {
			appendFloat(r.Hi[i])
		}
	}
	for _, sn := range nodes {
		payload = payload[:0]
		flags := uint16(0)
		ents := sn.n.Entries()
		if sn.n.Leaf() {
			flags = pager.LeafPage
			for _, e := range ents {
				it := e.Data.(*leafItem)
				ba, ok := it.approx.(*fuzzy.BoundaryApprox)
				if !ok {
					w.Abort()
					return fmt.Errorf("query: save paged: object %d uses a non-persistable estimator %T", it.id, it.approx)
				}
				payload = binary.LittleEndian.AppendUint64(payload, it.id)
				appendRect(ba.Support)
				appendRect(ba.Kernel)
				for i := 0; i < d; i++ {
					appendFloat(ba.HiLine[i].M)
					appendFloat(ba.HiLine[i].T)
				}
				for i := 0; i < d; i++ {
					appendFloat(ba.LoLine[i].M)
					appendFloat(ba.LoLine[i].T)
				}
				for i := 0; i < d; i++ {
					appendFloat(it.rep[i])
				}
			}
		} else {
			for i, e := range ents {
				appendRect(e.Rect)
				payload = binary.LittleEndian.AppendUint32(payload, sn.children[i])
			}
		}
		if _, err := w.WritePage(flags, uint16(len(ents)), payload); err != nil {
			w.Abort()
			return err
		}
	}
	return w.Commit(pager.Manifest{
		RootPage:   0,
		Dims:       uint32(d),
		Height:     uint32(tree.Height()),
		MinEntries: uint32(min),
		MaxEntries: uint32(max),
		Objects:    uint64(tree.Len()),
	})
}

// decodePage turns one page into a node frame. Interior child references
// must point strictly forward (pre-order ids), which makes cycles — and
// therefore unbounded traversals over a corrupt file — structurally
// impossible.
func decodePage(src rtree.NodeSource, d int, pageCount uint32, page uint32, flags uint16, count uint16, payload []byte) (*rtree.Node, error) {
	leaf := flags&pager.LeafPage != 0
	rec := interiorRecordSize(d)
	if leaf {
		rec = summaryRecordSize(d)
	}
	if int(count)*rec > len(payload) {
		return nil, fmt.Errorf("%w: page %d holds %d records of %d bytes beyond its payload", pager.ErrCorrupt, page, count, rec)
	}
	pos := 0
	readFloat := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
		pos += 8
		return v
	}
	readRect := func() geom.Rect {
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for i := 0; i < d; i++ {
			lo[i] = readFloat()
		}
		for i := 0; i < d; i++ {
			hi[i] = readFloat()
		}
		return geom.Rect{Lo: lo, Hi: hi}
	}
	readLines := func() []hull.Line {
		ls := make([]hull.Line, d)
		for i := 0; i < d; i++ {
			ls[i].M = readFloat()
			ls[i].T = readFloat()
		}
		return ls
	}
	entries := make([]rtree.Entry, count)
	for i := range entries {
		if leaf {
			id := binary.LittleEndian.Uint64(payload[pos:])
			pos += 8
			approx := &fuzzy.BoundaryApprox{
				Support: readRect(),
				Kernel:  readRect(),
				HiLine:  readLines(),
				LoLine:  readLines(),
			}
			rep := make(geom.Point, d)
			for j := 0; j < d; j++ {
				rep[j] = readFloat()
			}
			entries[i] = rtree.Entry{
				Rect: approx.Support,
				Data: &leafItem{id: id, approx: approx, rep: rep},
			}
		} else {
			r := readRect()
			child := binary.LittleEndian.Uint32(payload[pos:])
			pos += 4
			if child <= page || child >= pageCount {
				return nil, fmt.Errorf("%w: page %d references child page %d (must be in (%d, %d))", pager.ErrCorrupt, page, child, page, pageCount)
			}
			entries[i] = rtree.Entry{Rect: r, Child: rtree.NewStub(src, child)}
		}
	}
	return rtree.NewFrame(leaf, entries), nil
}

// PagedIndex is an Index served from a page file through a block cache
// instead of a fully resident tree. It implements the complete Searcher
// interface (the query machinery is shared with in-memory indexes via stub
// resolution); mutations are rejected with store.ErrReadOnly. Close
// releases the page file.
type PagedIndex struct {
	*Index
	file *pager.File
}

var _ Searcher = (*PagedIndex)(nil)

// OpenPagedIndex serves the page file at path over st's objects through a
// block cache holding at most cacheBytes of pages. Only the root page is
// loaded (and pinned); everything else faults in on first touch. The store
// must match the page file's dimensionality, and the manifest's object
// count must equal expectObjects (pass -1 for st.Len() — a shard of a
// partitioned index passes its partition's population instead, since the
// store is shared). opts must use the default estimator — page files only
// encode the paper's linear boundary approximation.
func OpenPagedIndex(st store.Reader, path string, cacheBytes int64, expectObjects int, opts Options) (*PagedIndex, error) {
	if opts.Estimator != nil {
		return nil, badArgf("query: open paged: custom estimators have no persistent form")
	}
	f, err := pager.Open(path)
	if err != nil {
		return nil, err
	}
	m := f.Manifest()
	if st.Len() > 0 && int(m.Dims) != st.Dims() {
		f.Close()
		return nil, fmt.Errorf("%w: dims %d vs store %d", ErrPagedMismatch, m.Dims, st.Dims())
	}
	if expectObjects < 0 {
		expectObjects = st.Len()
	}
	if int(m.Objects) != expectObjects {
		f.Close()
		return nil, fmt.Errorf("%w: %d indexed objects for %d expected", ErrPagedMismatch, m.Objects, expectObjects)
	}
	opts = opts.withDefaults()
	opts.MinEntries, opts.MaxEntries = int(m.MinEntries), int(m.MaxEntries)

	d := int(m.Dims)
	var cache *pager.Cache
	decode := func(page uint32, flags uint16, count uint16, payload []byte) (*rtree.Node, error) {
		return decodePage(cache, d, m.PageCount, page, flags, count, payload)
	}
	cache = pager.NewCache(f, cacheBytes, decode)
	cache.Pin(m.RootPage) // the root stays resident for the index lifetime
	root, _ := cache.Load(m.RootPage)
	if err := cache.Err(); err != nil {
		f.Close()
		return nil, err
	}
	tree := rtree.NewPagedTree(root, int(m.Height), int(m.Objects), int(m.MinEntries), int(m.MaxEntries))
	ix := newIndex(tree, st, opts)
	ix.pageCache = cache
	return &PagedIndex{Index: ix, file: f}, nil
}

// Close releases the page file. In-flight queries on old snapshots must
// have drained.
func (p *PagedIndex) Close() error { return p.file.Close() }

// Generation returns the page file generation being served.
func (p *PagedIndex) Generation() uint64 { return p.file.Manifest().Generation }

// CacheStats returns the block cache counters.
func (p *PagedIndex) CacheStats() pager.CacheStats { return p.Index.pageCache.Stats() }

// resolveNode returns a node's decoded form, charging any page fault to the
// query's stats: a cache miss is one page read, a cache hit is free I/O but
// still recorded so hit ratios are observable per query. In-memory nodes
// cost one nil check.
func resolveNode(n *rtree.Node, st *Stats) *rtree.Node {
	src := n.Source()
	if src == nil {
		return n
	}
	rn, hit := src.Load(n.Page())
	if hit {
		st.PageCacheHits++
	} else {
		st.PageReads++
	}
	return rn
}

// pagedErr surfaces the block cache's sticky failure so a degraded
// traversal (a page that failed its CRC or could not be read resolves to an
// empty node) reports an error instead of a silently truncated answer.
func (ix *Index) pagedErr() error {
	if ix.pageCache == nil {
		return nil
	}
	if err := ix.pageCache.Err(); err != nil {
		return fmt.Errorf("query: paged read failed: %w", err)
	}
	return nil
}

// CacheStatsOf exposes a searcher's block-cache counters, aggregated across
// shards; ok is false for fully in-memory searchers.
func CacheStatsOf(s Searcher) (cs pager.CacheStats, ok bool) {
	add := func(ix *Index) {
		if ix.pageCache == nil {
			return
		}
		st := ix.pageCache.Stats()
		cs.Hits += st.Hits
		cs.Misses += st.Misses
		cs.Evictions += st.Evictions
		cs.ResidentBytes += st.ResidentBytes
		cs.CapacityBytes += st.CapacityBytes
		ok = true
	}
	switch v := s.(type) {
	case *Index:
		add(v)
	case *PagedIndex:
		add(v.Index)
	case *ShardedIndex:
		for _, sh := range v.shards {
			add(sh)
		}
	}
	return cs, ok
}
