package query

import (
	"math"
	"sort"
	"time"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/geom"
	"fuzzyknn/internal/rtree"
)

// Result is one AKNN answer. For the lazy-probe variants a result may be
// admitted purely through its distance bounds without ever reading the
// object from storage; such results have Exact == false and carry the bounds
// instead of the exact distance.
type Result struct {
	ID    uint64
	Dist  float64 // exact α-distance when Exact, else the lower bound
	Exact bool
	Lower float64 // lower bound d−α (equals Dist when Exact)
	Upper float64 // upper bound d+α (equals Dist when Exact)
}

// sortResults orders rs by the canonical ascending (Dist, ID) result
// order (resultLess — the same comparator the cross-shard merge uses).
// Breaking distance ties by object id (rather than heap pop order) makes
// outputs byte-identical across runs and across shard layouts.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return resultLess(rs[i], rs[j]) })
}

// AKNN answers the ad-hoc kNN query (Definition 4): the k objects with the
// smallest α-distance to q, using the selected algorithm variant. Results
// are ordered by ascending (distance, id), taking the lower bound as the
// distance for non-exact results. If the index holds fewer than k objects,
// all of them are returned.
func (ix *Index) AKNN(q *fuzzy.Object, k int, alpha float64, algo AKNNAlgorithm) ([]Result, Stats, error) {
	start := time.Now()
	var st Stats
	s := ix.read()
	if err := ix.validateQuery(s, q, k, alpha); err != nil {
		return nil, st, err
	}
	res, _, err := ix.aknn(s, q, k, alpha, algo, &st)
	st.Duration = time.Since(start)
	return res, st, err
}

// gEntry is one element of the lazy-probe buffer G (§3.3): an unprobed leaf
// entry with its distance bounds.
type gEntry struct {
	lower, upper float64
	item         *leafItem
}

// aknn is the shared implementation, running entirely against one snapshot.
// It additionally returns the objects it probed, which the RKNN algorithms
// reuse to build distance profiles without re-reading storage.
func (ix *Index) aknn(s *snapshot, q *fuzzy.Object, k int, alpha float64, algo AKNNAlgorithm, st *Stats) ([]Result, map[uint64]*fuzzy.Object, error) {
	mq := q.MBR(alpha)
	useLB := algo != Basic
	lazy := algo == LBLP || algo == LBLPUB

	// Q'_α: the fixed sample of the query's α-cut for Lemma 1 (§3.4).
	var samples []geom.Point
	if algo == LBLPUB {
		samples = q.SampleCut(alpha, ix.opts.SampleSize, ix.opts.SampleSeed)
	}

	lowerOf := func(supportRect geom.Rect, it *leafItem) float64 {
		if useLB {
			return geom.MinDist(it.approx.EstimateMBR(alpha), mq)
		}
		return geom.MinDist(supportRect, mq)
	}
	upperOf := func(it *leafItem) float64 {
		u := geom.MaxDist(it.approx.EstimateMBR(alpha), mq)
		for _, s := range samples {
			if d := geom.Dist(it.rep, s); d < u {
				u = d
			}
		}
		return u
	}

	probed := make(map[uint64]*fuzzy.Object)
	probe := func(it *leafItem) (float64, error) {
		obj, err := ix.getObject(it.id, st)
		if err != nil {
			return 0, err
		}
		st.DistanceEvals++
		d := fuzzy.AlphaDist(obj, q, alpha)
		probed[it.id] = obj
		return d, nil
	}

	h := newBestFirstQueue()
	if root := s.tree.Root(); len(root.Entries()) > 0 {
		h.Push(pqItem{key: geom.MinDist(mq, s.tree.Bounds()), kind: kindNode, node: root})
	}

	var results []Result
	// Lazy-probe buffer G (§3.3). Invariant maintained after every step:
	// |G| ≤ k − |results|, so every buffered entry is guaranteed a slot in
	// the top-k once all other candidates are exhausted.
	var buffer []gEntry

	admit := func(g gEntry) {
		results = append(results, Result{
			ID: g.item.id, Dist: g.lower, Exact: false, Lower: g.lower, Upper: g.upper,
		})
	}
	// bufferMin returns the index of the buffered entry with the smallest
	// (lower bound, id). The buffer holds at most k entries, so linear scans
	// are cheap.
	bufferMin := func() int {
		j := 0
		for i := 1; i < len(buffer); i++ {
			if buffer[i].lower < buffer[j].lower ||
				(buffer[i].lower == buffer[j].lower && buffer[i].item.id < buffer[j].item.id) {
				j = i
			}
		}
		return j
	}
	// enforceInvariant probes the most promising buffered entries until the
	// buffer fits into the remaining result slots (Algorithm 2's overflow:
	// "lazy probe makes all the object retrieval mandatory"). Exact objects
	// re-enter H, preserving best-first order.
	enforceInvariant := func() error {
		for len(buffer) > k-len(results) {
			j := bufferMin()
			g := buffer[j]
			buffer = append(buffer[:j], buffer[j+1:]...)
			d, err := probe(g.item)
			if err != nil {
				return err
			}
			h.Push(pqItem{key: d, kind: kindObject, id: g.item.id, dist: d})
		}
		return nil
	}

	for len(results) < k && (h.Len() > 0 || len(buffer) > 0) {
		hKey := math.Inf(1)
		if h.Len() > 0 {
			hKey = h.PeekKey()
		}
		if len(buffer) > 0 {
			// Admission (§3.3): a buffered entry whose upper bound beats
			// every remaining lower bound in H beats everything still in H,
			// and the size invariant guarantees it a slot — add it to the
			// results without ever probing it.
			progressed := false
			for i := 0; i < len(buffer) && len(results) < k; {
				if buffer[i].upper < hKey {
					admit(buffer[i])
					buffer = append(buffer[:i], buffer[i+1:]...)
					progressed = true
				} else {
					i++
				}
			}
			if progressed {
				continue
			}
			if h.Len() == 0 {
				// No admissible upper bound but nothing left to compare
				// against: resolve the most promising entry by probing.
				if err := enforceInvariantAlways(&buffer, bufferMin, probe, h); err != nil {
					return nil, nil, err
				}
				continue
			}
			// If the buffer's best lower bound precedes — or ties — the best
			// of H, it must be resolved before any exact object in H may be
			// emitted. The tie case matters for determinism: the buffered
			// entry could hide an equal-distance object with a smaller id,
			// which must then win the (distance, id) ranking through the
			// heap's id tiebreak rather than lose to pop order.
			j := bufferMin()
			if buffer[j].lower <= hKey {
				g := buffer[j]
				buffer = append(buffer[:j], buffer[j+1:]...)
				d, err := probe(g.item)
				if err != nil {
					return nil, nil, err
				}
				h.Push(pqItem{key: d, kind: kindObject, id: g.item.id, dist: d})
				continue
			}
		}
		if h.Len() == 0 {
			continue // buffer handling above will drain it
		}
		e := h.Pop()
		switch e.kind {
		case kindObject:
			// Exact distance ≤ every remaining lower bound in H and in the
			// buffer: this is the next true nearest neighbor.
			results = append(results, Result{
				ID: e.id, Dist: e.dist, Exact: true, Lower: e.dist, Upper: e.dist,
			})
			if err := enforceInvariant(); err != nil {
				return nil, nil, err
			}

		case kindNode:
			st.NodeAccesses++
			for _, ent := range e.node.Entries() {
				if e.node.Leaf() {
					it := ent.Data.(*leafItem)
					h.Push(pqItem{key: lowerOf(ent.Rect, it), kind: kindLeaf, id: it.id, item: it})
				} else {
					h.Push(pqItem{key: geom.MinDist(mq, ent.Rect), kind: kindNode, node: ent.Child})
				}
			}

		case kindLeaf:
			if !lazy {
				d, err := probe(e.item)
				if err != nil {
					return nil, nil, err
				}
				h.Push(pqItem{key: d, kind: kindObject, id: e.item.id, dist: d})
				continue
			}
			buffer = append(buffer, gEntry{lower: e.key, upper: upperOf(e.item), item: e.item})
			if err := enforceInvariant(); err != nil {
				return nil, nil, err
			}
		}
	}
	// Results were appended in best-first emission order, which already
	// ascends by distance; the final sort only re-ranks equal-distance
	// neighbors by id so the output is deterministic.
	sortResults(results)
	return results, probed, nil
}

// enforceInvariantAlways resolves one buffered entry by probing when H is
// empty but no admission is possible (upper-bound ties). It guarantees
// progress in the rare case that bounds alone cannot rank the remainder.
func enforceInvariantAlways(buffer *[]gEntry, bufferMin func() int, probe func(*leafItem) (float64, error), h *bestFirstQueue) error {
	j := bufferMin()
	g := (*buffer)[j]
	*buffer = append((*buffer)[:j], (*buffer)[j+1:]...)
	d, err := probe(g.item)
	if err != nil {
		return err
	}
	h.Push(pqItem{key: d, kind: kindObject, id: g.item.id, dist: d})
	return nil
}

// LinearScanAKNN is the paper's baseline (§3.1): probe every object,
// evaluate its α-distance, keep the top k by (distance, id). It shares the
// Result/Stats contract with AKNN and is used as the correctness reference.
func (ix *Index) LinearScanAKNN(q *fuzzy.Object, k int, alpha float64) ([]Result, Stats, error) {
	start := time.Now()
	var st Stats
	s := ix.read()
	if err := ix.validateQuery(s, q, k, alpha); err != nil {
		return nil, st, err
	}
	type cand struct {
		id uint64
		d  float64
	}
	var cands []cand
	// Scan the snapshot's population (not the live store) so the baseline
	// stays consistent under concurrent mutation.
	for _, id := range s.leafIDs() {
		obj, err := ix.getObject(id, &st)
		if err != nil {
			return nil, st, err
		}
		st.DistanceEvals++
		cands = append(cands, cand{id: id, d: fuzzy.AlphaDist(obj, q, alpha)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	results := make([]Result, len(cands))
	for i, c := range cands {
		results[i] = Result{ID: c.id, Dist: c.d, Exact: true, Lower: c.d, Upper: c.d}
	}
	st.Duration = time.Since(start)
	return results, st, nil
}

// Refine probes any non-exact results (produced by the lazy-probe variants)
// and returns the set re-sorted by exact (distance, id).
func (ix *Index) Refine(q *fuzzy.Object, alpha float64, rs []Result) ([]Result, Stats, error) {
	var st Stats
	if err := ix.validateQuery(ix.read(), q, 1, alpha); err != nil {
		return nil, st, err
	}
	out := make([]Result, len(rs))
	copy(out, rs)
	for i := range out {
		if out[i].Exact {
			continue
		}
		obj, err := ix.getObject(out[i].ID, &st)
		if err != nil {
			return nil, st, err
		}
		st.DistanceEvals++
		d := fuzzy.AlphaDist(obj, q, alpha)
		out[i] = Result{ID: out[i].ID, Dist: d, Exact: true, Lower: d, Upper: d}
	}
	sortResults(out)
	return out, st, nil
}

// RangeSearch answers the α-range query: every object with
// d_α(A, q) ≤ radius, with exact distances, ordered by (distance, id). It
// is the search primitive behind RSS (Lemma 3), exposed as a query type of
// its own — the fuzzy analogue of a spatial range query.
func (ix *Index) RangeSearch(q *fuzzy.Object, alpha, radius float64) ([]Result, Stats, error) {
	started := time.Now()
	var st Stats
	s := ix.read()
	if err := ix.validateQuery(s, q, 1, alpha); err != nil {
		return nil, st, err
	}
	if radius < 0 || math.IsNaN(radius) {
		return nil, st, badArgf("query: radius must be non-negative, got %v", radius)
	}
	_, dists, err := ix.rangeSearch(s, q, alpha, radius, true, &st)
	if err != nil {
		return nil, st, err
	}
	results := make([]Result, 0, len(dists))
	for id, d := range dists {
		results = append(results, Result{ID: id, Dist: d, Exact: true, Lower: d, Upper: d})
	}
	sortResults(results)
	st.Duration = time.Since(started)
	return results, st, nil
}

// rangeSearch collects every object with d_α(A, q) ≤ radius, probing only
// entries whose lower bound passes the radius test (used by RSS, Lemma 3).
// It runs against the given snapshot and returns the probed objects and
// their exact distances.
func (ix *Index) rangeSearch(s *snapshot, q *fuzzy.Object, alpha, radius float64, useLB bool, st *Stats) (map[uint64]*fuzzy.Object, map[uint64]float64, error) {
	mq := q.MBR(alpha)
	objs := make(map[uint64]*fuzzy.Object)
	dists := make(map[uint64]float64)
	if math.IsInf(radius, 1) {
		radius = math.MaxFloat64
	}
	var visit func(n *rtree.Node) error
	visit = func(n *rtree.Node) error {
		st.NodeAccesses++
		for _, ent := range n.Entries() {
			if n.Leaf() {
				it := ent.Data.(*leafItem)
				lb := geom.MinDist(ent.Rect, mq)
				if useLB {
					lb = geom.MinDist(it.approx.EstimateMBR(alpha), mq)
				}
				if lb > radius {
					continue
				}
				obj, err := ix.getObject(it.id, st)
				if err != nil {
					return err
				}
				st.DistanceEvals++
				d := fuzzy.AlphaDist(obj, q, alpha)
				if d <= radius {
					objs[it.id] = obj
					dists[it.id] = d
				}
			} else if geom.MinDist(mq, ent.Rect) <= radius {
				if err := visit(ent.Child); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if root := s.tree.Root(); len(root.Entries()) > 0 {
		if err := visit(root); err != nil {
			return nil, nil, err
		}
	}
	return objs, dists, nil
}
