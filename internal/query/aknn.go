package query

import (
	"math"
	"slices"
	"time"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/geom"
	"fuzzyknn/internal/rtree"
)

// Result is one AKNN answer. For the lazy-probe variants a result may be
// admitted purely through its distance bounds without ever reading the
// object from storage; such results have Exact == false and carry the bounds
// instead of the exact distance.
type Result struct {
	ID    uint64
	Dist  float64 // exact α-distance when Exact, else the lower bound
	Exact bool
	Lower float64 // lower bound d−α (equals Dist when Exact)
	Upper float64 // upper bound d+α (equals Dist when Exact)
}

// sortResults orders rs by the canonical ascending (Dist, ID) result
// order, expressed through resultLess — the exact comparator the
// cross-shard merge uses, so the two orders can never drift apart.
// Breaking distance ties by object id (rather than heap pop order) makes
// outputs byte-identical across runs and across shard layouts.
// slices.SortFunc rather than sort.Slice keeps the hot paths allocation
// free (sort.Slice boxes its closure).
func sortResults(rs []Result) {
	slices.SortFunc(rs, func(a, b Result) int {
		if resultLess(a, b) {
			return -1
		}
		if resultLess(b, a) {
			return 1
		}
		return 0
	})
}

// AKNN answers the ad-hoc kNN query (Definition 4): the k objects with the
// smallest α-distance to q, using the selected algorithm variant. Results
// are ordered by ascending (distance, id), taking the lower bound as the
// distance for non-exact results. If the index holds fewer than k objects,
// all of them are returned.
func (ix *Index) AKNN(q *fuzzy.Object, k int, alpha float64, algo AKNNAlgorithm) ([]Result, Stats, error) {
	return ix.AKNNAppend(nil, q, k, alpha, algo)
}

// AKNNAppend is AKNN appending the results to dst and returning the
// extended slice. Passing a reused buffer (dst[:0] of a previous answer)
// makes the steady-state query loop allocation free: all per-query working
// state lives in pooled scratch, and the answer lands in caller-owned
// memory. dst's previous contents must no longer be referenced.
func (ix *Index) AKNNAppend(dst []Result, q *fuzzy.Object, k int, alpha float64, algo AKNNAlgorithm) ([]Result, Stats, error) {
	start := time.Now()
	s := ix.read()
	if err := ix.validateQuery(s, q, k, alpha); err != nil {
		return dst, Stats{}, err
	}
	sc := getScratch()
	defer putScratch(sc)
	sc.stats = Stats{}
	out, err := ix.aknnInto(sc, dst, s, q, k, alpha, algo, nil, nil, &sc.stats)
	if err != nil {
		return dst, sc.stats, err
	}
	sc.stats.Duration = time.Since(start)
	return out, sc.stats, nil
}

// gEntry is one element of the lazy-probe buffer G (§3.3): an unprobed leaf
// entry with its distance bounds.
type gEntry struct {
	lower, upper float64
	item         *leafItem
}

// aknnRun is the state of one AKNN execution against one snapshot. All
// formerly closure-captured state lives on this struct — itself embedded in
// the per-query scratch — so a steady-state search allocates nothing: the
// heap, the lazy-probe buffer, the probe cache and the distance evaluator
// are all recycled across queries.
type aknnRun struct {
	ix      *Index
	q       *fuzzy.Object
	k       int
	alpha   float64
	st      *Stats
	sc      *scratch
	mq      geom.Rect
	useLB   bool
	lazy    bool
	samples []geom.Point
	// probed caches every probed object, keyed by id. For plain AKNN it is
	// the scratch's own map; RKNN passes its refinement context's cache so
	// sub-searches share probes.
	probed map[uint64]*fuzzy.Object
	// profiles optionally reuses staircase values some earlier phase
	// already paid for (RKNN refinement): when the visited object's profile
	// is cached, its plateau value replaces the fresh closest-pair
	// computation. Store accesses and counters are charged identically
	// either way, so the paper's cost metrics are unaffected.
	profiles *fuzzy.ProfileCache
	results  []Result
	// base is the length of the caller's dst prefix: the search appends
	// after it, counts only its own emissions toward k, and sorts only its
	// own suffix.
	base   int
	buffer []gEntry
}

// emitted returns how many results this run has produced so far.
func (r *aknnRun) emitted() int { return len(r.results) - r.base }

// aknnInto is the shared AKNN implementation, running entirely against one
// snapshot and appending results to dst. probed, when non-nil, receives
// every probed object (nil selects the scratch's own cache); profiles, when
// non-nil, short-circuits distance evaluations whose staircase is already
// cached. The append-into-dst contract is what keeps the steady-state loop
// at zero allocations.
func (ix *Index) aknnInto(sc *scratch, dst []Result, s *snapshot, q *fuzzy.Object, k int, alpha float64, algo AKNNAlgorithm,
	probed map[uint64]*fuzzy.Object, profiles *fuzzy.ProfileCache, st *Stats) ([]Result, error) {
	if probed == nil {
		clear(sc.probed)
		probed = sc.probed
	}
	sc.dist.Reset(q, alpha)
	r := &sc.aknn
	*r = aknnRun{
		ix:       ix,
		q:        q,
		k:        k,
		alpha:    alpha,
		st:       st,
		sc:       sc,
		mq:       q.MBR(alpha),
		useLB:    algo != Basic,
		lazy:     algo == LBLP || algo == LBLPUB,
		probed:   probed,
		profiles: profiles,
		results:  dst,
		base:     len(dst),
		buffer:   sc.buffer[:0],
	}
	if algo == LBLPUB {
		// Q'_α: the fixed sample of the query's α-cut for Lemma 1 (§3.4).
		sc.samples, sc.sampleIdx = q.AppendSampleCut(sc.samples[:0], sc.sampleIdx, alpha, ix.opts.SampleSize, ix.opts.SampleSeed)
		r.samples = sc.samples
	}
	sc.pq.reset()
	if root := s.tree.Root(); len(root.Entries()) > 0 {
		// The root is the queue's only element when popped, so its key never
		// participates in a comparison; 0 is as good a lower bound as the
		// tree-bounds MinDist and costs no allocation.
		sc.pq.Push(pqItem{key: 0, kind: kindNode, node: root})
	}
	err := r.run()
	sc.buffer = r.buffer[:0] // keep grown capacity
	out := r.results
	r.results = nil
	if err == nil {
		err = ix.pagedErr()
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// probe reads one object and evaluates its exact α-distance, charging the
// access and the evaluation to the run's stats.
func (r *aknnRun) probe(it *leafItem) (float64, error) {
	obj, err := r.ix.getObject(it.id, r.st)
	if err != nil {
		return 0, err
	}
	r.st.DistanceEvals++
	var d float64
	if p, ok := r.lookupProfile(obj); ok {
		d = p.Dist(r.alpha)
	} else {
		d = r.sc.dist.Dist(obj)
	}
	r.probed[it.id] = obj
	return d, nil
}

func (r *aknnRun) lookupProfile(obj *fuzzy.Object) (*fuzzy.Profile, bool) {
	if r.profiles == nil {
		return nil, false
	}
	return r.profiles.Lookup(obj, r.q)
}

// upper evaluates the §3.4 upper bound of a leaf entry: MaxDist of the
// estimated cut MBR, improved by the representative-point distances to the
// sampled query cut (Lemma 1).
func (r *aknnRun) upper(it *leafItem) float64 {
	r.sc.est = it.approx.EstimateMBRInto(r.alpha, r.sc.est)
	u := geom.MaxDist(r.sc.est, r.mq)
	for _, s := range r.samples {
		if d := geom.Dist(it.rep, s); d < u {
			u = d
		}
	}
	return u
}

// bufferMin returns the index of the buffered entry with the smallest
// (lower bound, id). The buffer holds at most k entries, so linear scans
// are cheap.
func (r *aknnRun) bufferMin() int {
	j := 0
	for i := 1; i < len(r.buffer); i++ {
		if r.buffer[i].lower < r.buffer[j].lower ||
			(r.buffer[i].lower == r.buffer[j].lower && r.buffer[i].item.id < r.buffer[j].item.id) {
			j = i
		}
	}
	return j
}

// probeBufferMin resolves the most promising buffered entry by probing;
// the exact object re-enters H, preserving best-first order.
func (r *aknnRun) probeBufferMin() error {
	j := r.bufferMin()
	g := r.buffer[j]
	r.buffer = append(r.buffer[:j], r.buffer[j+1:]...)
	d, err := r.probe(g.item)
	if err != nil {
		return err
	}
	r.sc.pq.Push(pqItem{key: d, kind: kindObject, id: g.item.id, dist: d})
	return nil
}

// enforceInvariant probes buffered entries until the buffer fits into the
// remaining result slots (Algorithm 2's overflow: "lazy probe makes all the
// object retrieval mandatory").
func (r *aknnRun) enforceInvariant() error {
	for len(r.buffer) > r.k-r.emitted() {
		if err := r.probeBufferMin(); err != nil {
			return err
		}
	}
	return nil
}

// run executes the best-first search loop; see the original §3 algorithms.
// The lazy-probe buffer G maintains the invariant |G| ≤ k − |results| after
// every step, so every buffered entry is guaranteed a slot in the top-k
// once all other candidates are exhausted.
func (r *aknnRun) run() error {
	h := &r.sc.pq
	for r.emitted() < r.k && (h.Len() > 0 || len(r.buffer) > 0) {
		hKey := math.Inf(1)
		if h.Len() > 0 {
			hKey = h.PeekKey()
		}
		if len(r.buffer) > 0 {
			// Admission (§3.3): a buffered entry whose upper bound beats
			// every remaining lower bound in H beats everything still in H,
			// and the size invariant guarantees it a slot — add it to the
			// results without ever probing it.
			progressed := false
			for i := 0; i < len(r.buffer) && r.emitted() < r.k; {
				if r.buffer[i].upper < hKey {
					g := r.buffer[i]
					r.results = append(r.results, Result{
						ID: g.item.id, Dist: g.lower, Exact: false, Lower: g.lower, Upper: g.upper,
					})
					r.buffer = append(r.buffer[:i], r.buffer[i+1:]...)
					progressed = true
				} else {
					i++
				}
			}
			if progressed {
				continue
			}
			if h.Len() == 0 {
				// No admissible upper bound but nothing left to compare
				// against: resolve the most promising entry by probing.
				if err := r.probeBufferMin(); err != nil {
					return err
				}
				continue
			}
			// If the buffer's best lower bound precedes — or ties — the best
			// of H, it must be resolved before any exact object in H may be
			// emitted. The tie case matters for determinism: the buffered
			// entry could hide an equal-distance object with a smaller id,
			// which must then win the (distance, id) ranking through the
			// heap's id tiebreak rather than lose to pop order.
			if j := r.bufferMin(); r.buffer[j].lower <= hKey {
				g := r.buffer[j]
				r.buffer = append(r.buffer[:j], r.buffer[j+1:]...)
				d, err := r.probe(g.item)
				if err != nil {
					return err
				}
				h.Push(pqItem{key: d, kind: kindObject, id: g.item.id, dist: d})
				continue
			}
		}
		if h.Len() == 0 {
			continue // buffer handling above will drain it
		}
		e := h.Pop()
		switch e.kind {
		case kindObject:
			// Exact distance ≤ every remaining lower bound in H and in the
			// buffer: this is the next true nearest neighbor.
			r.results = append(r.results, Result{
				ID: e.id, Dist: e.dist, Exact: true, Lower: e.dist, Upper: e.dist,
			})
			if err := r.enforceInvariant(); err != nil {
				return err
			}

		case kindNode:
			r.st.NodeAccesses++
			r.expand(resolveNode(e.node, r.st))

		case kindLeaf:
			if !r.lazy {
				d, err := r.probe(e.item)
				if err != nil {
					return err
				}
				h.Push(pqItem{key: d, kind: kindObject, id: e.item.id, dist: d})
				continue
			}
			r.buffer = append(r.buffer, gEntry{lower: e.key, upper: r.upper(e.item), item: e.item})
			if err := r.enforceInvariant(); err != nil {
				return err
			}
		}
	}
	// Results were appended in best-first emission order, which already
	// ascends by distance; the final sort only re-ranks equal-distance
	// neighbors by id so the output is deterministic.
	sortResults(r.results[r.base:])
	return nil
}

// expand pushes a node's children, scanning lower bounds off the node's
// flattened rectangle layout (one contiguous pass, no per-entry pointer
// chasing). Leaf entries of the LB variants take the tighter §3.2
// conservative boundary MBR instead.
func (r *aknnRun) expand(n *rtree.Node) {
	ents := n.Entries()
	if n.Leaf() {
		for i := range ents {
			it := ents[i].Data.(*leafItem)
			var key float64
			if r.useLB {
				r.sc.est = it.approx.EstimateMBRInto(r.alpha, r.sc.est)
				key = geom.MinDist(r.sc.est, r.mq)
			} else {
				key = n.EntryMinDist(i, r.mq)
			}
			r.sc.pq.Push(pqItem{key: key, kind: kindLeaf, id: it.id, item: it})
		}
		return
	}
	for i := range ents {
		r.sc.pq.Push(pqItem{key: n.EntryMinDist(i, r.mq), kind: kindNode, node: ents[i].Child})
	}
}

// LinearScanAKNN is the paper's baseline (§3.1): probe every object,
// evaluate its α-distance, keep the top k by (distance, id). It shares the
// Result/Stats contract with AKNN and is used as the correctness reference.
func (ix *Index) LinearScanAKNN(q *fuzzy.Object, k int, alpha float64) ([]Result, Stats, error) {
	start := time.Now()
	var st Stats
	s := ix.read()
	if err := ix.validateQuery(s, q, k, alpha); err != nil {
		return nil, st, err
	}
	sc := getScratch()
	defer putScratch(sc)
	sc.dist.Reset(q, alpha)
	cands := sc.idDists[:0]
	// Scan the snapshot's population (not the live store) so the baseline
	// stays consistent under concurrent mutation.
	for _, id := range s.leafIDs(&st) {
		obj, err := ix.getObject(id, &st)
		if err != nil {
			return nil, st, err
		}
		st.DistanceEvals++
		cands = append(cands, idDist{id: id, d: sc.dist.Dist(obj)})
	}
	if err := ix.pagedErr(); err != nil {
		return nil, st, err
	}
	sortIDDists(cands)
	if len(cands) > k {
		cands = cands[:k]
	}
	results := make([]Result, len(cands))
	for i, c := range cands {
		results[i] = Result{ID: c.id, Dist: c.d, Exact: true, Lower: c.d, Upper: c.d}
	}
	sc.idDists = cands[:0]
	st.Duration = time.Since(start)
	return results, st, nil
}

// sortIDDists orders work pairs by ascending (distance, id).
func sortIDDists(cands []idDist) {
	slices.SortFunc(cands, func(a, b idDist) int {
		switch {
		case a.d < b.d:
			return -1
		case a.d > b.d:
			return 1
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		}
		return 0
	})
}

// Refine probes any non-exact results (produced by the lazy-probe variants)
// and returns the set re-sorted by exact (distance, id).
func (ix *Index) Refine(q *fuzzy.Object, alpha float64, rs []Result) ([]Result, Stats, error) {
	var st Stats
	if err := ix.validateQuery(ix.read(), q, 1, alpha); err != nil {
		return nil, st, err
	}
	sc := getScratch()
	defer putScratch(sc)
	sc.dist.Reset(q, alpha)
	out := make([]Result, len(rs))
	copy(out, rs)
	for i := range out {
		if out[i].Exact {
			continue
		}
		obj, err := ix.getObject(out[i].ID, &st)
		if err != nil {
			return nil, st, err
		}
		st.DistanceEvals++
		d := sc.dist.Dist(obj)
		out[i] = Result{ID: out[i].ID, Dist: d, Exact: true, Lower: d, Upper: d}
	}
	sortResults(out)
	return out, st, nil
}

// RangeSearch answers the α-range query: every object with
// d_α(A, q) ≤ radius, with exact distances, ordered by (distance, id). It
// is the search primitive behind RSS (Lemma 3), exposed as a query type of
// its own — the fuzzy analogue of a spatial range query.
func (ix *Index) RangeSearch(q *fuzzy.Object, alpha, radius float64) ([]Result, Stats, error) {
	return ix.RangeSearchAppend(nil, q, alpha, radius)
}

// RangeSearchAppend is RangeSearch appending the results to dst; like
// AKNNAppend it makes the steady-state loop allocation free when dst is a
// reused buffer.
func (ix *Index) RangeSearchAppend(dst []Result, q *fuzzy.Object, alpha, radius float64) ([]Result, Stats, error) {
	started := time.Now()
	s := ix.read()
	if err := ix.validateQuery(s, q, 1, alpha); err != nil {
		return dst, Stats{}, err
	}
	if radius < 0 || math.IsNaN(radius) {
		return dst, Stats{}, badArgf("query: radius must be non-negative, got %v", radius)
	}
	sc := getScratch()
	defer putScratch(sc)
	sc.stats = Stats{}
	_, dists, err := ix.rangeSearch(sc, s, q, alpha, radius, true, &sc.stats)
	if err != nil {
		return dst, sc.stats, err
	}
	base := len(dst)
	for id, d := range dists {
		dst = append(dst, Result{ID: id, Dist: d, Exact: true, Lower: d, Upper: d})
	}
	sortResults(dst[base:])
	sc.stats.Duration = time.Since(started)
	return dst, sc.stats, nil
}

// rangeRun is the closure-free state of one range search; like aknnRun it
// lives in the scratch so traversal allocates nothing.
type rangeRun struct {
	ix     *Index
	q      *fuzzy.Object
	alpha  float64
	radius float64
	useLB  bool
	mq     geom.Rect
	st     *Stats
	sc     *scratch
	objs   map[uint64]*fuzzy.Object
	dists  map[uint64]float64
}

// rangeSearch collects every object with d_α(A, q) ≤ radius, probing only
// entries whose lower bound passes the radius test (used by RSS, Lemma 3).
// It runs against the given snapshot and returns the probed objects and
// their exact distances. The returned maps are owned by sc — valid only
// until the scratch is released or the next rangeSearch on it.
func (ix *Index) rangeSearch(sc *scratch, s *snapshot, q *fuzzy.Object, alpha, radius float64, useLB bool, st *Stats) (map[uint64]*fuzzy.Object, map[uint64]float64, error) {
	if math.IsInf(radius, 1) {
		radius = math.MaxFloat64
	}
	clear(sc.rngObjs)
	clear(sc.rngDists)
	sc.dist.Reset(q, alpha)
	r := &sc.rng
	*r = rangeRun{
		ix:     ix,
		q:      q,
		alpha:  alpha,
		radius: radius,
		useLB:  useLB,
		mq:     q.MBR(alpha),
		st:     st,
		sc:     sc,
		objs:   sc.rngObjs,
		dists:  sc.rngDists,
	}
	if root := s.tree.Root(); len(root.Entries()) > 0 {
		if err := r.visit(root); err != nil {
			return nil, nil, err
		}
	}
	if err := ix.pagedErr(); err != nil {
		return nil, nil, err
	}
	return r.objs, r.dists, nil
}

func (r *rangeRun) visit(n *rtree.Node) error {
	r.st.NodeAccesses++
	ents := n.Entries()
	for i := range ents {
		if n.Leaf() {
			it := ents[i].Data.(*leafItem)
			var lb float64
			if r.useLB {
				r.sc.est = it.approx.EstimateMBRInto(r.alpha, r.sc.est)
				lb = geom.MinDist(r.sc.est, r.mq)
			} else {
				lb = n.EntryMinDist(i, r.mq)
			}
			if lb > r.radius {
				continue
			}
			obj, err := r.ix.getObject(it.id, r.st)
			if err != nil {
				return err
			}
			r.st.DistanceEvals++
			d := r.sc.dist.Dist(obj)
			if d <= r.radius {
				r.objs[it.id] = obj
				r.dists[it.id] = d
			}
		} else if n.EntryMinDist(i, r.mq) <= r.radius {
			if err := r.visit(resolveNode(ents[i].Child, r.st)); err != nil {
				return err
			}
		}
	}
	return nil
}
