package query

import (
	"math/rand/v2"
	"testing"

	"fuzzyknn/internal/fuzzy"
)

// This file is the cross-variant equivalence harness: on randomized seeded
// datasets, all four AKNN variants must return the same result set (up to
// distance ties) and all four RKNN variants must return byte-identical
// qualifying ranges — first on a freshly built index, then again after a
// long random insert/delete churn sequence, with the R-tree invariants
// checked at every checkpoint. The paper proves the variants equivalent;
// this harness makes the proof executable while the tree underneath churns.

// equivState drives one harness run: the index plus a model of the live ids
// so churn can pick deletion victims.
type equivState struct {
	t    *testing.T
	rng  *rand.Rand
	ix   *Index
	live []uint64
	next uint64
}

func newEquivState(t *testing.T, seed uint64, n int) *equivState {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	objs := makeObjects(rng, n, 10, 12, 8) // quantized memberships force ties
	// Alternate the build path by seed: incremental trees enforce the
	// strict min-fill invariant in CheckInvariants (bulk-loaded trees are
	// exempt — STR legitimately leaves underfull tail nodes), so odd seeds
	// give the churn checkpoints real underflow detection.
	s := &equivState{
		t:    t,
		rng:  rng,
		ix:   buildIndex(t, objs, Options{MinEntries: 2, MaxEntries: 6, Incremental: seed%2 == 1}),
		next: uint64(n) + 1000,
	}
	for _, o := range objs {
		s.live = append(s.live, o.ID())
	}
	return s
}

// churn applies ops random mutations (biased toward inserts so the index
// grows), checking the tree invariants at regular checkpoints.
func (s *equivState) churn(ops int) {
	for op := 0; op < ops; op++ {
		if len(s.live) == 0 || s.rng.Float64() < 0.52 {
			o := makeObjectsWithBase(s.rng, s.next, 1, 10, 12, 8)[0]
			s.next++
			if err := s.ix.Insert(o); err != nil {
				s.t.Fatalf("churn op %d: insert: %v", op, err)
			}
			s.live = append(s.live, o.ID())
		} else {
			i := s.rng.IntN(len(s.live))
			if _, err := s.ix.Delete(s.live[i]); err != nil {
				s.t.Fatalf("churn op %d: delete %d: %v", op, s.live[i], err)
			}
			s.live[i] = s.live[len(s.live)-1]
			s.live = s.live[:len(s.live)-1]
		}
		if op%50 == 0 || op == ops-1 {
			if err := s.ix.CheckInvariants(); err != nil {
				s.t.Fatalf("churn op %d: %v", op, err)
			}
			if s.ix.Len() != len(s.live) {
				s.t.Fatalf("churn op %d: index len %d, model %d", op, s.ix.Len(), len(s.live))
			}
		}
	}
}

// assertAKNNEquivalence checks Basic/LB/LBLP/LBLPUB against the linear-scan
// reference for one query setting.
func (s *equivState) assertAKNNEquivalence(q *fuzzy.Object, k int, alpha float64, label string) {
	s.t.Helper()
	want, _, err := s.ix.LinearScanAKNN(q, k, alpha)
	if err != nil {
		s.t.Fatalf("%s: linear scan: %v", label, err)
	}
	for _, algo := range []AKNNAlgorithm{Basic, LB, LBLP, LBLPUB} {
		got, _, err := s.ix.AKNN(q, k, alpha, algo)
		if err != nil {
			s.t.Fatalf("%s: %v: %v", label, algo, err)
		}
		refined, _, err := s.ix.Refine(q, alpha, got)
		if err != nil {
			s.t.Fatalf("%s: %v: refine: %v", label, algo, err)
		}
		checkSameDistances(s.t, refined, want, label+"/"+algo.String())
	}
}

// assertRKNNEquivalence checks that all four RKNN variants return identical
// qualifying ranges for one query setting.
func (s *equivState) assertRKNNEquivalence(q *fuzzy.Object, k int, as, ae float64, label string) {
	s.t.Helper()
	type answer struct {
		algo RKNNAlgorithm
		res  []RangedResult
	}
	answers := make([]answer, 0, 4)
	for _, algo := range []RKNNAlgorithm{Naive, BasicRKNN, RSS, RSSICR} {
		res, _, err := s.ix.RKNN(q, k, as, ae, algo)
		if err != nil {
			s.t.Fatalf("%s: %v: %v", label, algo, err)
		}
		answers = append(answers, answer{algo: algo, res: res})
	}
	ref := answers[0]
	for _, a := range answers[1:] {
		if len(a.res) != len(ref.res) {
			s.t.Fatalf("%s: %v returned %d objects, %v returned %d",
				label, a.algo, len(a.res), ref.algo, len(ref.res))
		}
		for i := range a.res {
			if a.res[i].ID != ref.res[i].ID {
				s.t.Fatalf("%s: result %d: %v has id %d, %v has id %d",
					label, i, a.algo, a.res[i].ID, ref.algo, ref.res[i].ID)
			}
			got, want := a.res[i].Qualifying.String(), ref.res[i].Qualifying.String()
			if got != want {
				s.t.Fatalf("%s: object %d: %v qualifies on %s, %v on %s",
					label, a.res[i].ID, a.algo, got, ref.algo, want)
			}
		}
	}
}

// assertAllEquivalent sweeps a few query settings over both families.
func (s *equivState) assertAllEquivalent(label string, queries int) {
	for qi := 0; qi < queries; qi++ {
		q := makeQuery(s.rng, 12, 12, 8)
		for _, k := range []int{1, 4} {
			s.assertAKNNEquivalence(q, k, 0.3, label)
			s.assertAKNNEquivalence(q, k, 0.75, label)
			s.assertRKNNEquivalence(q, k, 0.2, 0.85, label)
		}
		s.assertRKNNEquivalence(q, 3, 0.5, 0.5, label) // degenerate range
	}
}

// TestCrossVariantEquivalenceUnderChurn is the headline property test: the
// eight variants agree on a fresh index, keep agreeing after a >=500-op
// random churn, and again after a second churn wave — with structural
// invariants holding throughout.
func TestCrossVariantEquivalenceUnderChurn(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		s := newEquivState(t, seed, 50)
		if err := s.ix.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		s.assertAllEquivalent("fresh", 2)

		s.churn(500)
		s.assertAllEquivalent("churned", 2)

		// A second, delete-heavy wave: drain most of the index, then verify
		// equivalence holds near-empty too.
		for len(s.live) > 5 {
			i := s.rng.IntN(len(s.live))
			if _, err := s.ix.Delete(s.live[i]); err != nil {
				t.Fatal(err)
			}
			s.live[i] = s.live[len(s.live)-1]
			s.live = s.live[:len(s.live)-1]
		}
		if err := s.ix.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		s.assertAllEquivalent("drained", 1)
	}
}

// TestEquivalenceOnEmptyAndTinyIndexes covers the edges: all variants must
// agree (on emptiness) for 0- and 1-object indexes reached by deletion.
func TestEquivalenceOnEmptyAndTinyIndexes(t *testing.T) {
	s := newEquivState(t, 99, 3)
	for len(s.live) > 1 {
		if _, err := s.ix.Delete(s.live[0]); err != nil {
			t.Fatal(err)
		}
		s.live = s.live[1:]
	}
	s.assertAllEquivalent("one-object", 1)
	if _, err := s.ix.Delete(s.live[0]); err != nil {
		t.Fatal(err)
	}
	s.live = nil
	q := makeQuery(s.rng, 12, 12, 8)
	for _, algo := range []AKNNAlgorithm{Basic, LB, LBLP, LBLPUB} {
		res, _, err := s.ix.AKNN(q, 3, 0.5, algo)
		if err != nil {
			t.Fatalf("%v on empty index: %v", algo, err)
		}
		if len(res) != 0 {
			t.Fatalf("%v on empty index returned %d results", algo, len(res))
		}
	}
	for _, algo := range []RKNNAlgorithm{Naive, BasicRKNN, RSS, RSSICR} {
		res, _, err := s.ix.RKNN(q, 3, 0.2, 0.8, algo)
		if err != nil {
			t.Fatalf("%v on empty index: %v", algo, err)
		}
		if len(res) != 0 {
			t.Fatalf("%v on empty index returned %d results", algo, len(res))
		}
	}
}
