package query

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/store"
)

// ShardedIndex is a Searcher over N hash-partitioned shards. Each shard is
// a complete, independently mutable, snapshot-isolated Index (usually with
// its own store); ShardOf assigns every object id to exactly one shard.
// Queries fan out across the shards in parallel and merge exactly:
//
//   - AKNN: per-shard incremental best-first streams, k-way merged with
//     the cross-shard lower-bound early stop (see merge.go).
//   - RKNN: one cross-shard AKNN at αe fixes the pruning radius (Lemma 3),
//     per-shard α-range searches collect the global candidate set, and the
//     candidates are refined in memory through the interval.Set algebra —
//     the RSS plan (Algorithm 4/5) with the search phase fanned out.
//   - RangeSearch: per-shard range searches, union, one sort.
//   - ReverseKNN: per-shard filter+verify yields conservative candidates
//     (an object with ≥ k closer neighbors in its own shard can never
//     qualify globally); the shared refine completes each candidate's
//     closer-count against the remaining shards with early exit at k.
//   - ExpectedDistKNN: per-shard local top-k scans, merged.
//
// Mutations route by ShardOf and inherit the owning shard's snapshot
// isolation. There is no global snapshot: one sharded query reads each
// shard's snapshot at fan-out time, so a mutation concurrent with a query
// may be visible in some shards' view and not others. Each individual
// shard view is still a consistent population, and quiescent reads (no
// writer in flight) are byte-identical to a single-tree index over the
// same objects — the property the equivalence tests pin down.
type ShardedIndex struct {
	shards []*Index
}

// NewSharded assembles a sharded index over pre-built shards. Shard i must
// hold exactly the objects with ShardOf(id, len(shards)) == i — mutations
// route by that function, and the exact-merge arguments rely on the
// partition being disjoint and complete. Shards with known dimensionality
// must agree.
func NewSharded(shards []*Index) (*ShardedIndex, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("query: sharded index needs at least one shard")
	}
	dims := 0
	for i, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("query: shard %d is nil", i)
		}
		d := sh.Dims()
		if d == 0 {
			continue
		}
		if dims == 0 {
			dims = d
		} else if d != dims {
			return nil, fmt.Errorf("query: shard %d has dims %d, shard set has dims %d", i, d, dims)
		}
	}
	return &ShardedIndex{shards: shards}, nil
}

// BuildSharded partitions the store's objects across n shards by ShardOf
// and builds each shard as a filtered Index over the same reader. It is
// the single-store construction path (one file serving several trees);
// callers wanting per-shard stores build the shards themselves and use
// NewSharded.
func BuildSharded(st store.Reader, n int, opts Options) (*ShardedIndex, error) {
	if n < 1 {
		return nil, fmt.Errorf("query: shard count must be >= 1, got %d", n)
	}
	shards := make([]*Index, n)
	for i := range shards {
		i := i
		ix, err := BuildFiltered(st, opts, func(id uint64) bool { return ShardOf(id, n) == i })
		if err != nil {
			return nil, err
		}
		shards[i] = ix
	}
	return NewSharded(shards)
}

// NumShards returns the shard count.
func (sx *ShardedIndex) NumShards() int { return len(sx.shards) }

// Shard returns the i-th shard for diagnostics and tests.
func (sx *ShardedIndex) Shard(i int) *Index { return sx.shards[i] }

// shardFor returns the shard owning id.
func (sx *ShardedIndex) shardFor(id uint64) *Index {
	return sx.shards[ShardOf(id, len(sx.shards))]
}

// Len returns the total number of indexed objects.
func (sx *ShardedIndex) Len() int {
	n := 0
	for _, sh := range sx.shards {
		n += sh.Len()
	}
	return n
}

// Dims returns the index dimensionality: the first shard-known value (all
// non-empty shards agree by construction).
func (sx *ShardedIndex) Dims() int {
	for _, sh := range sx.shards {
		if d := sh.Dims(); d != 0 {
			return d
		}
	}
	return 0
}

// Stats reports per-shard physical layout.
func (sx *ShardedIndex) Stats() IndexStats {
	out := IndexStats{Dims: sx.Dims(), Shards: make([]ShardStats, len(sx.shards))}
	for i, sh := range sx.shards {
		out.Shards[i] = sh.Stats().Shards[0]
		out.Objects += out.Shards[i].Objects
	}
	return out
}

// Checkpoint implements Searcher: every shard's store checkpoints (and
// optionally compacts) in turn, sequentially — checkpoints are disk-bound,
// so staggering them bounds peak I/O while each shard's writer stays live.
// The first failing shard aborts the sweep; shards already checkpointed
// keep their new checkpoints, which is harmless (each shard's manifest is
// self-consistent on its own).
func (sx *ShardedIndex) Checkpoint(compact bool) ([]store.CheckpointInfo, error) {
	if err := sx.refuseIfDegraded(); err != nil {
		return nil, fmt.Errorf("query: checkpoint: %w", err)
	}
	infos := make([]store.CheckpointInfo, 0, len(sx.shards))
	for i, sh := range sx.shards {
		sub, err := sh.Checkpoint(compact)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		infos = append(infos, sub...)
	}
	return infos, nil
}

// CheckInvariants verifies every shard's R-tree structure and that each
// shard only holds ids it owns.
func (sx *ShardedIndex) CheckInvariants() error {
	for i, sh := range sx.shards {
		if err := sh.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		for _, id := range sh.read().leafIDs(&Stats{}) {
			if ShardOf(id, len(sx.shards)) != i {
				return fmt.Errorf("shard %d holds id %d owned by shard %d", i, id, ShardOf(id, len(sx.shards)))
			}
		}
	}
	return nil
}

// Insert adds obj to its owning shard. See Index.Insert for the error
// taxonomy; dimensionality is additionally validated against the whole
// shard set, so an object cannot slip a mismatched dimensionality into an
// empty shard of a populated index.
func (sx *ShardedIndex) Insert(obj *fuzzy.Object) error {
	if obj == nil {
		return badArgf("query: insert: nil object")
	}
	if err := sx.refuseIfDegraded(); err != nil {
		return fmt.Errorf("query: insert: %w", err)
	}
	if d := sx.Dims(); d != 0 && obj.Dims() != d {
		return badArgf("query: insert: object dims %d, index dims %d", obj.Dims(), d)
	}
	return sx.shardFor(obj.ID()).Insert(obj)
}

// Delete retires id from its owning shard. See Index.Delete.
func (sx *ShardedIndex) Delete(id uint64) (Stats, error) {
	if err := sx.refuseIfDegraded(); err != nil {
		return Stats{}, fmt.Errorf("query: delete: %w", err)
	}
	return sx.shardFor(id).Delete(id)
}

// shardView pins one shard to one snapshot for the duration of a query, so
// a multi-phase plan (e.g. RKNN's AKNN + range search) reads a consistent
// population per shard.
type shardView struct {
	ix *Index
	s  *snapshot
}

func (sx *ShardedIndex) views() []shardView {
	out := make([]shardView, len(sx.shards))
	for i, sh := range sx.shards {
		out[i] = shardView{ix: sh, s: sh.read()}
	}
	return out
}

// fanOut runs fn once per shard view concurrently and returns the first
// error (by shard order, for determinism).
func fanOut(views []shardView, fn func(i int, v shardView) error) error {
	errs := make([]error, len(views))
	var wg sync.WaitGroup
	for i := range views {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i, views[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AKNN answers the ad-hoc kNN query across all shards. The coordinator
// merges exactly, so results are always exact, ascending by (distance,
// id), regardless of the variant: algo only selects the per-shard leaf
// lower bound (support MBR for Basic, the §3.2 boundary MBR otherwise) —
// lazy probing is a single-tree optimization that does not survive a
// cross-shard merge (see merge.go). A refined single-tree answer over the
// same objects is byte-identical.
func (sx *ShardedIndex) AKNN(q *fuzzy.Object, k int, alpha float64, algo AKNNAlgorithm) ([]Result, Stats, error) {
	started := time.Now()
	var st Stats
	if err := validateArgs(sx.Dims(), q, k, alpha); err != nil {
		return nil, st, err
	}
	if algo < Basic || algo > LBLPUB {
		return nil, st, badArgf("query: unknown AKNN algorithm %d", int(algo))
	}
	res, err := sx.aknnMerged(sx.views(), q, k, alpha, algo != Basic, &st)
	if err != nil {
		return nil, st, err
	}
	st.Duration = time.Since(started)
	return res, st, nil
}

// aknnMerged fans the cursor search out over the given views and merges.
// Every cursor holds a pooled scratch; they are all released when the merge
// completes, so a batch of sharded queries recycles one scratch per shard.
func (sx *ShardedIndex) aknnMerged(views []shardView, q *fuzzy.Object, k int, alpha float64, useLB bool, st *Stats) ([]Result, error) {
	streams := make([]*shardStream, len(views))
	for i, v := range views {
		streams[i] = &shardStream{cur: newNNCursor(v.ix, v.s, q, alpha, useLB)}
	}
	defer func() {
		for _, s := range streams {
			s.cur.release()
		}
	}()
	return mergeAKNN(streams, k, st)
}

// LinearScanAKNN fans the exhaustive baseline out and merges the local
// top-k lists.
func (sx *ShardedIndex) LinearScanAKNN(q *fuzzy.Object, k int, alpha float64) ([]Result, Stats, error) {
	started := time.Now()
	var st Stats
	if err := validateArgs(sx.Dims(), q, k, alpha); err != nil {
		return nil, st, err
	}
	views := sx.views()
	lists := make([][]Result, len(views))
	stats := make([]Stats, len(views))
	err := fanOut(views, func(i int, v shardView) error {
		var err error
		lists[i], stats[i], err = v.ix.LinearScanAKNN(q, k, alpha)
		return err
	})
	if err != nil {
		return nil, st, err
	}
	for _, s := range stats {
		addParallel(&st, s)
	}
	out := mergeTopK(lists, k)
	st.Duration = time.Since(started)
	return out, st, nil
}

// Refine probes any non-exact results through their owning shards and
// re-sorts by exact (distance, id). Sharded AKNN answers are always exact
// already; this exists so arbitrary Result sets (e.g. relayed from a
// single-tree index) refine correctly.
func (sx *ShardedIndex) Refine(q *fuzzy.Object, alpha float64, rs []Result) ([]Result, Stats, error) {
	var st Stats
	if err := validateArgs(sx.Dims(), q, 1, alpha); err != nil {
		return nil, st, err
	}
	out := make([]Result, len(rs))
	copy(out, rs)
	for i := range out {
		if out[i].Exact {
			continue
		}
		sh := sx.shardFor(out[i].ID)
		obj, err := sh.getObject(out[i].ID, &st)
		if err != nil {
			return nil, st, err
		}
		st.DistanceEvals++
		d := fuzzy.AlphaDist(obj, q, alpha)
		out[i] = Result{ID: out[i].ID, Dist: d, Exact: true, Lower: d, Upper: d}
	}
	sortResults(out)
	return out, st, nil
}

// RangeSearch fans the α-range query out and unions the per-shard answers
// (disjoint by partition), ascending by (distance, id).
func (sx *ShardedIndex) RangeSearch(q *fuzzy.Object, alpha, radius float64) ([]Result, Stats, error) {
	started := time.Now()
	var st Stats
	if err := validateArgs(sx.Dims(), q, 1, alpha); err != nil {
		return nil, st, err
	}
	if radius < 0 || math.IsNaN(radius) {
		return nil, st, badArgf("query: radius must be non-negative, got %v", radius)
	}
	views := sx.views()
	lists := make([][]Result, len(views))
	stats := make([]Stats, len(views))
	err := fanOut(views, func(i int, v shardView) error {
		// Each fan-out goroutine runs in its own pooled scratch; the
		// scratch-owned result maps are drained into the coordinator's
		// slice before release.
		sc := getScratch()
		defer putScratch(sc)
		_, dists, err := v.ix.rangeSearch(sc, v.s, q, alpha, radius, true, &stats[i])
		if err != nil {
			return err
		}
		for id, d := range dists {
			lists[i] = append(lists[i], Result{ID: id, Dist: d, Exact: true, Lower: d, Upper: d})
		}
		return nil
	})
	if err != nil {
		return nil, st, err
	}
	var out []Result
	for i := range lists {
		addParallel(&st, stats[i])
		out = append(out, lists[i]...)
	}
	sortResults(out)
	st.Duration = time.Since(started)
	return out, st, nil
}

// RKNN answers the range kNN query across all shards with the RSS plan
// fanned out (Algorithms 4/5 of the paper, the search phase parallelized):
//
//  1. One cross-shard AKNN at αe fixes the global pruning radius — the
//     k-th nearest distance at the range's top (Lemma 3).
//  2. Every shard runs one α-range search at αs with that radius in
//     parallel; the union is the exact global candidate set (any object
//     ever in a kNN set within [αs, αe] is within the radius at αs).
//  3. Candidates are refined in memory: distance profiles are built once
//     from the objects the range searches already probed (no further IO),
//     and the per-object qualifying ranges accumulate through the
//     interval.Set algebra — critical-probability hopping for Naive/Basic/
//     RSS, Lemma 4 safe ranges for RSSICR.
//
// All variants return byte-identical ranges (the same equivalence the
// paper proves for the single-tree variants); they differ only in
// refinement cost. Results ascend by object id.
func (sx *ShardedIndex) RKNN(q *fuzzy.Object, k int, alphaStart, alphaEnd float64, algo RKNNAlgorithm) ([]RangedResult, Stats, error) {
	started := time.Now()
	var st Stats
	if err := validateArgs(sx.Dims(), q, k, alphaStart, alphaEnd); err != nil {
		return nil, st, err
	}
	if alphaStart > alphaEnd {
		return nil, st, badArgf("query: alphaStart %v > alphaEnd %v", alphaStart, alphaEnd)
	}
	if algo < Naive || algo > RSSICR {
		return nil, st, badArgf("query: unknown RKNN algorithm %d", int(algo))
	}
	views := sx.views()

	// Phase 1: global pruning radius from one cross-shard AKNN at αe.
	st.AKNNCalls++
	resE, err := sx.aknnMerged(views, q, k, alphaEnd, true, &st)
	if err != nil {
		return nil, st, err
	}
	if len(resE) == 0 {
		st.Duration = time.Since(started)
		return nil, st, nil // empty index
	}
	radius := math.Inf(1)
	if len(resE) >= k {
		radius = resE[len(resE)-1].Dist
	}

	// Phase 2: parallel per-shard range searches at αs. Each goroutine runs
	// in its own pooled scratch and copies the scratch-owned result map out
	// before releasing it.
	objMaps := make([]map[uint64]*fuzzy.Object, len(views))
	stats := make([]Stats, len(views))
	err = fanOut(views, func(i int, v shardView) error {
		sc := getScratch()
		defer putScratch(sc)
		objs, _, err := v.ix.rangeSearch(sc, v.s, q, alphaStart, radius, true, &stats[i])
		if err != nil {
			return err
		}
		m := make(map[uint64]*fuzzy.Object, len(objs))
		for id, o := range objs {
			m[id] = o
		}
		objMaps[i] = m
		return nil
	})
	if err != nil {
		return nil, st, err
	}

	// Phase 3: shared in-memory refinement over the candidate union, run in
	// the coordinator's own scratch.
	sc := getScratch()
	defer putScratch(sc)
	ctx := newRKNNCtx(sc, q, k, alphaStart, alphaEnd, &st)
	ctx.fetch = func(id uint64, st *Stats) (*fuzzy.Object, error) {
		// Candidates are pre-probed below; this only runs if refinement
		// ever touches a non-candidate id, which would be a logic error —
		// route to the owning shard rather than crash.
		return sx.shardFor(id).getObject(id, st)
	}
	cands := sc.cands[:0]
	for i := range objMaps {
		addParallel(&st, stats[i])
		for id, o := range objMaps[i] {
			ctx.probed[id] = o
			cands = append(cands, id)
		}
	}
	st.Candidates = len(cands)
	slices.Sort(cands)
	sc.cands = cands
	for _, id := range cands {
		if _, err := ctx.profile(id); err != nil {
			return nil, st, err
		}
	}
	if algo == RSSICR {
		err = ctx.refineICR(cands)
	} else {
		err = ctx.refineBasic(cands)
	}
	if err != nil {
		return nil, st, err
	}
	st.Duration = time.Since(started)
	return ctx.appendResults(nil), st, nil
}

// ReverseKNN fans the filter+verify pipeline out per shard, then finishes
// each surviving candidate's closer-count against the remaining shards.
// Per-shard verification is a conservative filter: an object with ≥ k
// closer neighbors in its own shard has ≥ k globally and is pruned without
// cross-shard work; a survivor qualifies iff its closer-counts summed over
// all shards stay below k, which the shared refine checks with early exit.
// Results ascend by (distance to q, id).
func (sx *ShardedIndex) ReverseKNN(q *fuzzy.Object, k int, alpha float64) ([]Result, Stats, error) {
	started := time.Now()
	var st Stats
	if err := validateArgs(sx.Dims(), q, k, alpha); err != nil {
		return nil, st, err
	}
	views := sx.views()
	cands := make([][]revCandidate, len(views))
	stats := make([]Stats, len(views))
	err := fanOut(views, func(i int, v shardView) error {
		sc := getScratch()
		defer putScratch(sc)
		var err error
		cands[i], err = v.ix.reverseCandidates(sc, v.s, q, k, alpha, &stats[i])
		return err
	})
	if err != nil {
		return nil, st, err
	}
	for i := range stats {
		addParallel(&st, stats[i])
	}
	sc := getScratch()
	defer putScratch(sc)
	var results []Result
	for i, shardCands := range cands {
		for _, c := range shardCands {
			total := c.closer
			for j, v := range views {
				if j == i || total >= k {
					continue
				}
				n, err := v.ix.countCloser(sc, v.s, c.obj, alpha, c.dist, q.ID(), k-total, &st)
				if err != nil {
					return nil, st, err
				}
				total += n
			}
			if total < k {
				results = append(results, Result{ID: c.obj.ID(), Dist: c.dist, Exact: true, Lower: c.dist, Upper: c.dist})
			}
		}
	}
	sortResults(results)
	st.Duration = time.Since(started)
	return results, st, nil
}

// ExpectedDistKNN fans the full-profile scan out per shard and merges the
// exact local top-k lists.
func (sx *ShardedIndex) ExpectedDistKNN(q *fuzzy.Object, k int) ([]Result, Stats, error) {
	started := time.Now()
	var st Stats
	if err := validateArgs(sx.Dims(), q, k, 1); err != nil {
		return nil, st, err
	}
	views := sx.views()
	lists := make([][]Result, len(views))
	stats := make([]Stats, len(views))
	err := fanOut(views, func(i int, v shardView) error {
		var err error
		lists[i], err = v.ix.expectedDistTopK(v.s, q, k, &stats[i])
		return err
	})
	if err != nil {
		return nil, st, err
	}
	for i := range stats {
		addParallel(&st, stats[i])
	}
	out := mergeTopK(lists, k)
	st.Duration = time.Since(started)
	return out, st, nil
}
