package query

import (
	"errors"
	"time"

	"fuzzyknn/internal/store"
)

// DegradedState describes a sticky degraded index: the backing store
// fail-stopped after a storage fault (store.ErrFailed — a failed fsync or
// write whose durability cannot be trusted), so every write is refused
// while reads keep serving the last published snapshot. The state never
// clears in place, for the same reason the store never retries a failed
// fsync: recovery is a reopen onto healthy storage, which replays exactly
// the acknowledged prefix.
type DegradedState struct {
	// Reason is the first fail-stop error observed (Cause.Error()).
	Reason string
	// Since is when the index entered degraded mode.
	Since time.Time
	// Cause is the first fail-stop error; it wraps store.ErrFailed.
	Cause error
}

// noteStoreErr routes every store-side mutation/checkpoint error through
// one place: a fail-stop flips the index into sticky degraded mode (first
// observation wins) and counts the refusal. It returns err unchanged so
// call sites can wrap it inline.
func (ix *Index) noteStoreErr(err error) error {
	if err != nil && errors.Is(err, store.ErrFailed) {
		ix.storageFaults.Add(1)
		ix.degraded.CompareAndSwap(nil, &DegradedState{Reason: err.Error(), Since: time.Now(), Cause: err})
	}
	return err
}

// refuseIfDegraded returns the shard's sticky fail-stop error (counting
// the refusal) when it is degraded. The single-index write paths don't
// need it — the poisoned store refuses on its own — but a sharded
// coordinator must gate writes to its healthy shards too, or a degraded
// index would keep accepting the subset of writes that happen to hash
// elsewhere.
func (ix *Index) refuseIfDegraded() error {
	if d := ix.degraded.Load(); d != nil {
		ix.storageFaults.Add(1)
		return d.Cause
	}
	return nil
}

// refuseIfDegraded returns the first degraded shard's fail-stop error, or
// nil when every shard is healthy.
func (sx *ShardedIndex) refuseIfDegraded() error {
	for _, sh := range sx.shards {
		if err := sh.refuseIfDegraded(); err != nil {
			return err
		}
	}
	return nil
}

// Degraded implements Searcher.
func (ix *Index) Degraded() *DegradedState { return ix.degraded.Load() }

// StorageFaults implements Searcher.
func (ix *Index) StorageFaults() int64 { return ix.storageFaults.Load() }

// Degraded implements Searcher: the coordinator is degraded as soon as any
// shard is (writes routed to that shard fail; a partial write surface is
// not worth advertising as healthy). The earliest-degraded shard's state
// is returned for a stable reason across calls.
func (sx *ShardedIndex) Degraded() *DegradedState {
	var first *DegradedState
	for _, sh := range sx.shards {
		if d := sh.Degraded(); d != nil && (first == nil || d.Since.Before(first.Since)) {
			first = d
		}
	}
	return first
}

// StorageFaults implements Searcher: the sum across shards.
func (sx *ShardedIndex) StorageFaults() int64 {
	var n int64
	for _, sh := range sx.shards {
		n += sh.StorageFaults()
	}
	return n
}
