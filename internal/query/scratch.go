package query

import (
	"sync"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/geom"
	"fuzzyknn/internal/interval"
	"fuzzyknn/internal/kdtree"
)

// scratch is the reusable per-query working state of the search algorithms:
// the best-first heap, the lazy-probe buffer, candidate and distance work
// arrays, probe caches, the α-distance evaluator and the RKNN refinement
// maps. Every public query entry point acquires one scratch from a
// sync.Pool, runs entirely inside it and releases it on return, so a
// steady-state query (after buffers have grown to the workload's high-water
// mark) performs no heap allocations in its hot loop. The engine's worker
// pool and the sharded coordinator's fan-out inherit the reuse for free:
// sequential queries on one goroutine keep getting the same warm scratch
// back, and concurrent queries each hold their own.
//
// # Invariants
//
//   - A scratch is owned by exactly one query execution at a time; nothing
//     reachable from it may outlive the release. Results handed to callers
//     are therefore always copied (or appended into caller-owned buffers by
//     the *Append entry points) before putScratch.
//   - Maps are cleared at the start of the path that uses them, not at
//     release, so unrelated query kinds do not pay for each other's state.
//   - The dist/dist2 evaluators and the profile cache clear their memo on
//     Reset/query change; entries never carry across executions keyed by
//     object id (ids may be recycled by churn — see fuzzy.DistEval).
type scratch struct {
	// stats is the per-query counter block. Entry points accumulate into
	// it and return a copy: a stack-local Stats whose address flows into
	// the run state would escape and cost one heap allocation per query.
	stats Stats

	// Best-first search (AKNN and the sharded cursor).
	pq     bestFirstQueue
	buffer []gEntry
	sub    []Result // results of sub-searches (RKNN's inner AKNN)
	probed map[uint64]*fuzzy.Object

	// Distance evaluation.
	dist     fuzzy.DistEval // pinned to (query, α) of the active search
	dist2    fuzzy.DistEval // secondary pin (reverse-kNN closer counts)
	profiles fuzzy.ProfileCache

	// MBR estimates consumed immediately after computation (never retained).
	est, estB geom.Rect

	// LBLPUB query-cut sampling.
	samples   []geom.Point
	sampleIdx []int

	// Range search.
	rng      rangeRun
	rngObjs  map[uint64]*fuzzy.Object
	rngDists map[uint64]float64

	// AKNN run state (kept here so the run struct itself is not allocated).
	aknn aknnRun

	// RKNN refinement.
	rctx         rknnCtx
	rknnProbed   map[uint64]*fuzzy.Object
	rknnProfiles map[uint64]*fuzzy.Profile
	rknnAcc      map[uint64]*interval.Set
	safeUntil    map[uint64]float64
	inCPrime     map[uint64]bool
	sets         []*interval.Set
	setN         int
	cands        []uint64
	members      []uint64
	fresh        []uint64
	ids          []uint64
	f64s         []float64
	idDists      []idDist

	// Reverse kNN.
	items   []*leafItem
	points  []geom.Point
	repTree kdtree.Tree
}

// idDist is a (object id, distance) work pair for top-k selections.
type idDist struct {
	id uint64
	d  float64
}

var scratchPool = sync.Pool{New: func() any { return newScratch() }}

func newScratch() *scratch {
	return &scratch{
		probed:       make(map[uint64]*fuzzy.Object, 64),
		rngObjs:      make(map[uint64]*fuzzy.Object, 64),
		rngDists:     make(map[uint64]float64, 64),
		rknnProbed:   make(map[uint64]*fuzzy.Object, 64),
		rknnProfiles: make(map[uint64]*fuzzy.Profile, 64),
		rknnAcc:      make(map[uint64]*interval.Set, 64),
		safeUntil:    make(map[uint64]float64, 16),
		inCPrime:     make(map[uint64]bool, 16),
	}
}

// getScratch takes a warm scratch from the pool.
func getScratch() *scratch { return scratchPool.Get().(*scratch) }

// putScratch returns sc to the pool. The caller must not retain anything
// reachable from it.
func putScratch(sc *scratch) { scratchPool.Put(sc) }

// takeSet hands out a cleared interval set from the scratch arena, growing
// the arena only while it is colder than the workload's high-water mark.
// resetSets rewinds the arena for the next query.
func (sc *scratch) takeSet() *interval.Set {
	if sc.setN < len(sc.sets) {
		s := sc.sets[sc.setN]
		s.Clear()
		sc.setN++
		return s
	}
	s := &interval.Set{}
	sc.sets = append(sc.sets, s)
	sc.setN++
	return s
}

func (sc *scratch) resetSets() { sc.setN = 0 }
