package query

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/store"
)

// This file pins the group-commit contract: an index ingested through
// ApplyBatch must answer byte-identically to one ingested by per-op
// Insert/Delete — across every AKNN and RKNN variant, range search,
// reverse kNN and expected-distance kNN, on single-tree and 4-shard
// layouts, on fresh, churned and drained populations — and a rejected
// batch must leave no trace.

// emptySearcher builds an empty mutable index of the requested layout.
func emptySearcher(t *testing.T, shards int, opts Options) Searcher {
	t.Helper()
	if shards <= 1 {
		ms, err := store.NewMemStore(nil)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Build(ms, opts)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	return buildShardedOver(t, nil, shards, opts)
}

// batchEquivState mirrors every mutation onto two indexes of the same
// layout: seq applies items one by one, bat group-commits them through
// ApplyBatch. The batch semantics (inserts before deletes, disjoint ids)
// are mirrored by sequencing the per-op side the same way.
type batchEquivState struct {
	t    *testing.T
	rng  *rand.Rand
	seq  Searcher
	bat  Searcher
	live []uint64
	next uint64
}

func newBatchEquivState(t *testing.T, seed uint64, shards int) *batchEquivState {
	rng := rand.New(rand.NewPCG(seed, seed^0x5ca1ab1e))
	opts := Options{MinEntries: 2, MaxEntries: 6, Incremental: seed%2 == 1}
	return &batchEquivState{
		t:    t,
		rng:  rng,
		seq:  emptySearcher(t, shards, opts),
		bat:  emptySearcher(t, shards, opts),
		next: 1,
	}
}

// apply lands one logical batch on both sides.
func (s *batchEquivState) apply(inserts []*fuzzy.Object, deletes []uint64) {
	s.t.Helper()
	for _, o := range inserts {
		if err := s.seq.Insert(o); err != nil {
			s.t.Fatalf("sequential insert %d: %v", o.ID(), err)
		}
	}
	for _, id := range deletes {
		if _, err := s.seq.Delete(id); err != nil {
			s.t.Fatalf("sequential delete %d: %v", id, err)
		}
	}
	stats, err := s.bat.ApplyBatch(inserts, deletes)
	if err != nil {
		s.t.Fatalf("batch of %d inserts + %d deletes: %v", len(inserts), len(deletes), err)
	}
	if len(stats) != len(inserts)+len(deletes) {
		s.t.Fatalf("batch returned %d stats for %d items", len(stats), len(inserts)+len(deletes))
	}
	for j := range deletes {
		if got := stats[len(inserts)+j].ObjectAccesses; got != 1 {
			s.t.Fatalf("delete item %d charged %d object accesses, want 1 (the locate probe)", j, got)
		}
	}
	for _, o := range inserts {
		s.live = append(s.live, o.ID())
	}
	for _, id := range deletes {
		for i := range s.live {
			if s.live[i] == id {
				s.live[i] = s.live[len(s.live)-1]
				s.live = s.live[:len(s.live)-1]
				break
			}
		}
	}
}

// freshObjects mints objects with previously unused ids.
func (s *batchEquivState) freshObjects(n int) []*fuzzy.Object {
	objs := makeObjectsWithBase(s.rng, s.next, n, 10, 12, 8)
	s.next += uint64(n) + 1
	return objs
}

// churn applies batches of mixed inserts and deletes of random sizes.
func (s *batchEquivState) churn(batches int) {
	for b := 0; b < batches; b++ {
		ins := s.freshObjects(1 + s.rng.IntN(20))
		var dels []uint64
		if len(s.live) > 0 {
			want := s.rng.IntN(min(12, len(s.live)) + 1)
			perm := s.rng.Perm(len(s.live))
			for _, i := range perm[:want] {
				dels = append(dels, s.live[i])
			}
		}
		s.apply(ins, dels)
	}
}

func (s *batchEquivState) checkInvariants() {
	s.t.Helper()
	if err := s.seq.(interface{ CheckInvariants() error }).CheckInvariants(); err != nil {
		s.t.Fatalf("sequential index: %v", err)
	}
	if err := s.bat.(interface{ CheckInvariants() error }).CheckInvariants(); err != nil {
		s.t.Fatalf("batch index: %v", err)
	}
	if s.seq.Len() != len(s.live) || s.bat.Len() != len(s.live) {
		s.t.Fatalf("len: sequential %d, batch %d, model %d", s.seq.Len(), s.bat.Len(), len(s.live))
	}
}

// assertEquivalent demands byte-identical answers from both ingest paths
// across all 8 AKNN/RKNN variants plus every other query family. Lazy
// AKNN variants are compared refined (their intermediate bounds may
// legitimately differ between tree shapes; the exact answers may not).
func (s *batchEquivState) assertEquivalent(label string, queries int) {
	s.t.Helper()
	s.checkInvariants()
	for qi := 0; qi < queries; qi++ {
		q := makeQuery(s.rng, 12, 12, 8)
		for _, k := range []int{1, 5} {
			for _, alpha := range []float64{0.3, 0.75} {
				want, _, err := s.seq.LinearScanAKNN(q, k, alpha)
				if err != nil {
					s.t.Fatalf("%s: sequential linear scan: %v", label, err)
				}
				got, _, err := s.bat.LinearScanAKNN(q, k, alpha)
				if err != nil {
					s.t.Fatalf("%s: batch linear scan: %v", label, err)
				}
				mustEqualResults(s.t, got, want, label+"/linear")
				for _, algo := range []AKNNAlgorithm{Basic, LB, LBLP, LBLPUB} {
					raw, _, err := s.bat.AKNN(q, k, alpha, algo)
					if err != nil {
						s.t.Fatalf("%s: batch %v: %v", label, algo, err)
					}
					refined, _, err := s.bat.Refine(q, alpha, raw)
					if err != nil {
						s.t.Fatalf("%s: batch refine %v: %v", label, algo, err)
					}
					mustEqualResults(s.t, refined, want, label+"/"+algo.String())
				}
			}
		}
		s.assertRKNNEquivalent(q, 4, 0.2, 0.85, label)
		s.assertRKNNEquivalent(q, 2, 0.5, 0.5, label)
		for _, radius := range []float64{0, 2.5, 8} {
			want, _, err := s.seq.RangeSearch(q, 0.5, radius)
			if err != nil {
				s.t.Fatalf("%s: sequential range: %v", label, err)
			}
			got, _, err := s.bat.RangeSearch(q, 0.5, radius)
			if err != nil {
				s.t.Fatalf("%s: batch range: %v", label, err)
			}
			mustEqualResults(s.t, got, want, label+"/range")
		}
		wantRev, _, err := s.seq.ReverseKNN(q, 4, 0.6)
		if err != nil {
			s.t.Fatalf("%s: sequential reverse: %v", label, err)
		}
		gotRev, _, err := s.bat.ReverseKNN(q, 4, 0.6)
		if err != nil {
			s.t.Fatalf("%s: batch reverse: %v", label, err)
		}
		mustEqualResults(s.t, gotRev, wantRev, label+"/reverse")
		wantE, _, err := s.seq.ExpectedDistKNN(q, 4)
		if err != nil {
			s.t.Fatalf("%s: sequential eknn: %v", label, err)
		}
		gotE, _, err := s.bat.ExpectedDistKNN(q, 4)
		if err != nil {
			s.t.Fatalf("%s: batch eknn: %v", label, err)
		}
		mustEqualResults(s.t, gotE, wantE, label+"/eknn")
	}
}

// assertRKNNEquivalent compares all four RKNN variants of the batch index
// against the sequential index's RSSICR reference, byte for byte.
func (s *batchEquivState) assertRKNNEquivalent(q *fuzzy.Object, k int, as, ae float64, label string) {
	s.t.Helper()
	want, _, err := s.seq.RKNN(q, k, as, ae, RSSICR)
	if err != nil {
		s.t.Fatalf("%s: sequential RKNN: %v", label, err)
	}
	for _, algo := range []RKNNAlgorithm{Naive, BasicRKNN, RSS, RSSICR} {
		got, _, err := s.bat.RKNN(q, k, as, ae, algo)
		if err != nil {
			s.t.Fatalf("%s: batch %v: %v", label, algo, err)
		}
		if len(got) != len(want) {
			s.t.Fatalf("%s: batch %v returned %d objects, sequential %d", label, algo, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				s.t.Fatalf("%s: %v result %d: id %d, want %d", label, algo, i, got[i].ID, want[i].ID)
			}
			if g, w := got[i].Qualifying.String(), want[i].Qualifying.String(); g != w {
				s.t.Fatalf("%s: %v object %d qualifies on %s, sequential on %s",
					label, algo, got[i].ID, g, w)
			}
		}
	}
}

// TestBatchEquivalence is the headline group-commit property test: batch
// ingest answers byte-identically to sequential ingest on fresh, churned
// and drained populations, single-tree and 4-shard.
func TestBatchEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name   string
		seed   uint64
		shards int
	}{
		{"single", 4, 1},             // STR default: large batches take the bulk-rebuild path
		{"single-incremental", 3, 1}, // Incremental ablation: always per-insert
		{"sharded4", 2, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := newBatchEquivState(t, tc.seed, tc.shards)
			// Fresh: one big group commit vs object-by-object.
			s.apply(s.freshObjects(120), nil)
			s.assertEquivalent("fresh", 3)
			// Churned: ≥30 mixed batches of random sizes.
			s.churn(30)
			s.assertEquivalent("churned", 3)
			// Drained: delete everything in a few batches, then assert on
			// the empty index, then refill.
			for len(s.live) > 0 {
				n := min(40, len(s.live))
				dels := make([]uint64, n)
				copy(dels, s.live[:n])
				s.apply(nil, dels)
			}
			s.assertEquivalent("drained", 2)
			s.apply(s.freshObjects(40), nil)
			s.assertEquivalent("refilled", 2)
		})
	}
}

// TestApplyBatchAllOrNothing checks that a rejected batch (every item
// error collected, positions exact) leaves both layouts untouched.
func TestApplyBatchAllOrNothing(t *testing.T) {
	for _, shards := range []int{1, 4} {
		s := newBatchEquivState(t, 7, shards)
		s.apply(s.freshObjects(40), nil)
		lenBefore := s.bat.Len()

		okIns := s.freshObjects(3)
		dupLive := s.live[0]
		batch := []*fuzzy.Object{okIns[0], nil, okIns[1], mustObj(t, dupLive), okIns[2]}
		dels := []uint64{s.live[1], 999_999, s.live[1]}
		_, err := s.bat.ApplyBatch(batch, dels)
		var be *BatchError
		if !errors.As(err, &be) {
			t.Fatalf("shards=%d: error %v, want *BatchError", shards, err)
		}
		wantItems := []struct {
			op  BatchOp
			pos int
		}{
			{OpInsert, 1}, // nil object
			{OpInsert, 3}, // duplicate of a live id
			{OpDelete, 1}, // unknown id
			{OpDelete, 2}, // repeated delete
		}
		if len(be.Items) != len(wantItems) {
			t.Fatalf("shards=%d: %d item errors (%v), want %d", shards, len(be.Items), be, len(wantItems))
		}
		for i, w := range wantItems {
			if be.Items[i].Op != w.op || be.Items[i].Pos != w.pos {
				t.Fatalf("shards=%d: item %d is (%v, %d), want (%v, %d)",
					shards, i, be.Items[i].Op, be.Items[i].Pos, w.op, w.pos)
			}
		}
		if !errors.Is(err, store.ErrDuplicate) || !errors.Is(err, store.ErrNotFound) || !errors.Is(err, ErrInvalidArgument) {
			t.Fatalf("shards=%d: batch error %v must expose its causes to errors.Is", shards, err)
		}
		if s.bat.Len() != lenBefore {
			t.Fatalf("shards=%d: rejected batch changed Len %d -> %d", shards, lenBefore, s.bat.Len())
		}
		// The corrected batch commits.
		s.apply(okIns, []uint64{s.live[1]})
		s.assertEquivalent("after-rejection", 2)
	}
}

// TestApplyBatchProbeAccounting builds an index over a Counting store and
// checks the probe contract: each delete costs exactly one store access
// (mirrored in its per-item Stats), inserts cost none, and liveness-level
// rejections (unknown delete id, duplicate insert) are answered from the
// store's live map without probing.
func TestApplyBatchProbeAccounting(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 2))
	objs := makeObjects(rng, 20, 5, 10, 4)
	ms, err := store.NewMemStore(objs)
	if err != nil {
		t.Fatal(err)
	}
	counting := store.NewCounting(ms)
	ix, err := Build(counting, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counting.Reset()

	ins := makeObjectsWithBase(rng, 100, 2, 5, 10, 4)
	stats, err := ix.ApplyBatch(ins, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, st := range stats {
		total += st.ObjectAccesses
	}
	if total != 3 || counting.Count() != 3 {
		t.Fatalf("batch charged %d accesses, store saw %d; want 3 (one locate per delete)", total, counting.Count())
	}

	// Liveness-checkable rejections must not probe.
	counting.Reset()
	if _, err := ix.ApplyBatch([]*fuzzy.Object{objs[5]}, nil); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if _, err := ix.ApplyBatch(nil, []uint64{777_777}); err == nil {
		t.Fatal("unknown delete accepted")
	}
	if counting.Count() != 0 {
		t.Fatalf("liveness rejections probed the store %d times", counting.Count())
	}
}

// mustObj builds a 1-point object with the given id.
func mustObj(t *testing.T, id uint64) *fuzzy.Object {
	t.Helper()
	o, err := fuzzy.New(id, []fuzzy.WeightedPoint{{P: []float64{1, 1}, Mu: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestApplyBatchDimsAdoption: an empty index adopts the batch's
// dimensionality atomically, and a mixed-dims batch is rejected whole —
// including the cross-shard case where the two dims land on different
// shards.
func TestApplyBatchDimsAdoption(t *testing.T) {
	for _, shards := range []int{1, 4} {
		s := emptySearcher(t, shards, Options{})
		rng := rand.New(rand.NewPCG(9, 9))
		objs2 := makeObjects(rng, 6, 5, 10, 4)
		var threeD []*fuzzy.Object
		for base := uint64(100); len(threeD) < 6; base++ {
			o, err := fuzzy.New(base, []fuzzy.WeightedPoint{{P: []float64{1, 2, 3}, Mu: 1}})
			if err != nil {
				t.Fatal(err)
			}
			threeD = append(threeD, o)
		}
		if _, err := s.ApplyBatch(append(objs2[:3:3], threeD[:3]...), nil); err == nil {
			t.Fatalf("shards=%d: mixed-dims batch accepted", shards)
		}
		if s.Len() != 0 || s.Dims() != 0 {
			t.Fatalf("shards=%d: rejected batch left len=%d dims=%d", shards, s.Len(), s.Dims())
		}
		if _, err := s.ApplyBatch(objs2, nil); err != nil {
			t.Fatalf("shards=%d: 2d batch: %v", shards, err)
		}
		if s.Dims() != 2 {
			t.Fatalf("shards=%d: dims %d after 2d batch", shards, s.Dims())
		}
		if _, err := s.ApplyBatch(threeD, nil); err == nil {
			t.Fatalf("shards=%d: 3d batch accepted into 2d index", shards)
		}
	}
}

// TestApplyBatchReadOnly: every item of a batch against a read-only store
// is rejected with ErrReadOnly.
func TestApplyBatchReadOnly(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 2))
	objs := makeObjects(rng, 5, 5, 10, 4)
	ix := buildIndex(t, objs, Options{})
	ro, err := Build(readOnlyStore{ix.Store()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ro.ApplyBatch(makeObjectsWithBase(rng, 100, 2, 5, 10, 4), []uint64{1})
	if !errors.Is(err, store.ErrReadOnly) {
		t.Fatalf("batch on read-only store: %v, want ErrReadOnly", err)
	}
	var be *BatchError
	if !errors.As(err, &be) || len(be.Items) != 3 {
		t.Fatalf("read-only rejection must list every item: %v", err)
	}
}

// readOnlyStore hides a store's write side.
type readOnlyStore struct{ store.Reader }

// TestApplyBatchConcurrentQueries race-checks group commits against
// snapshot readers on both layouts: queries running during an ApplyBatch
// must see either the whole batch or none of it (per shard).
func TestApplyBatchConcurrentQueries(t *testing.T) {
	for _, shards := range []int{1, 4} {
		s := newBatchEquivState(t, 11, shards)
		s.apply(s.freshObjects(80), nil)
		const batches = 20
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(seed, 1))
				for {
					select {
					case <-stop:
						return
					default:
					}
					q := makeQuery(rng, 8, 12, 8)
					if _, _, err := s.bat.AKNN(q, 3, 0.5, LBLPUB); err != nil {
						t.Errorf("AKNN during batch: %v", err)
						return
					}
					if _, _, err := s.bat.RKNN(q, 2, 0.3, 0.8, RSSICR); err != nil {
						t.Errorf("RKNN during batch: %v", err)
						return
					}
				}
			}(uint64(w + 100))
		}
		for b := 0; b < batches; b++ {
			ins := s.freshObjects(8)
			var dels []uint64
			for i := 0; i < 4 && i < len(s.live); i++ {
				dels = append(dels, s.live[i])
			}
			if _, err := s.bat.ApplyBatch(ins, dels); err != nil {
				t.Fatalf("batch %d: %v", b, err)
			}
			for _, o := range ins {
				s.live = append(s.live, o.ID())
			}
			remaining := s.live[:0]
			for _, id := range s.live {
				found := false
				for _, d := range dels {
					if d == id {
						found = true
						break
					}
				}
				if !found {
					remaining = append(remaining, id)
				}
			}
			s.live = remaining
		}
		close(stop)
		wg.Wait()
		if err := s.bat.(interface{ CheckInvariants() error }).CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
