package query

import (
	"math/rand/v2"
	"testing"

	"fuzzyknn/internal/fuzzy"
)

// TestStaircaseEstimatorSameAnswers verifies that switching the boundary
// estimator changes cost only, never answers.
func TestStaircaseEstimatorSameAnswers(t *testing.T) {
	rng := rand.New(rand.NewPCG(601, 1))
	objs := makeObjects(rng, 60, 15, 10, 0)
	linear := buildIndex(t, objs, Options{})
	stair := buildIndex(t, objs, Options{
		Estimator: func(o *fuzzy.Object) fuzzy.MBREstimator {
			return fuzzy.NewStaircaseApprox(o, 16)
		},
	})
	for trial := 0; trial < 5; trial++ {
		q := makeQuery(rng, 15, 10, 0)
		for _, alpha := range []float64{0.3, 0.6, 0.9} {
			a, _, err := linear.AKNN(q, 8, alpha, LB)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := stair.AKNN(q, 8, alpha, LB)
			if err != nil {
				t.Fatal(err)
			}
			checkSameDistances(t, b, a, "staircase-vs-linear")
		}
		r1, _, err := linear.RKNN(q, 4, 0.3, 0.7, RSSICR)
		if err != nil {
			t.Fatal(err)
		}
		r2, _, err := stair.RKNN(q, 4, 0.3, 0.7, RSSICR)
		if err != nil {
			t.Fatal(err)
		}
		checkSameRanged(t, r2, r1, "staircase RKNN")
	}
}

// TestStaircaseEstimatorNotWorseOnAccesses compares aggregate probe counts:
// the staircase bound encloses the exact per-level MBRs directly, so it
// should not lose to the linear bound overall.
func TestStaircaseEstimatorNotWorseOnAccesses(t *testing.T) {
	rng := rand.New(rand.NewPCG(603, 2))
	objs := makeObjects(rng, 300, 15, 22, 0)
	linear := buildIndex(t, objs, Options{})
	stair := buildIndex(t, objs, Options{
		Estimator: func(o *fuzzy.Object) fuzzy.MBREstimator {
			return fuzzy.NewStaircaseApprox(o, 32)
		},
	})
	var linAcc, stairAcc int
	for trial := 0; trial < 15; trial++ {
		q := makeQuery(rng, 15, 22, 0)
		_, st, err := linear.AKNN(q, 10, 0.7, LB)
		if err != nil {
			t.Fatal(err)
		}
		linAcc += st.ObjectAccesses
		_, st, err = stair.AKNN(q, 10, 0.7, LB)
		if err != nil {
			t.Fatal(err)
		}
		stairAcc += st.ObjectAccesses
	}
	if stairAcc > linAcc {
		t.Fatalf("staircase estimator probed more than linear: %d vs %d", stairAcc, linAcc)
	}
}

// TestStaircaseIndexCannotPersistSummaries documents the restriction.
func TestStaircaseIndexCannotPersistSummaries(t *testing.T) {
	rng := rand.New(rand.NewPCG(605, 3))
	objs := makeObjects(rng, 10, 8, 10, 4)
	stair := buildIndex(t, objs, Options{
		Estimator: func(o *fuzzy.Object) fuzzy.MBREstimator {
			return fuzzy.NewStaircaseApprox(o, 8)
		},
	})
	if _, err := stair.Summaries(); err == nil {
		t.Fatal("staircase summaries should not be persistable")
	}
}
