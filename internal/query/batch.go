package query

import (
	"fmt"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/rtree"
	"fuzzyknn/internal/store"
)

// BatchOp names the half of a batch an item error belongs to.
type BatchOp int

// Batch item operations.
const (
	OpInsert BatchOp = iota
	OpDelete
)

// String names the operation.
func (op BatchOp) String() string {
	if op == OpDelete {
		return "delete"
	}
	return "insert"
}

// BatchItemError locates one offending item of a rejected batch: Pos
// indexes into the inserts slice (OpInsert) or the deletes slice (OpDelete)
// of the ApplyBatch call that failed.
type BatchItemError struct {
	Op  BatchOp
	Pos int
	Err error
}

// Error implements error.
func (e *BatchItemError) Error() string {
	return fmt.Sprintf("%s %d: %v", e.Op, e.Pos, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *BatchItemError) Unwrap() error { return e.Err }

// BatchError rejects a whole batch: validation found the listed item
// errors (all of them, not just the first) and NOTHING was applied — the
// all-or-nothing contract means the caller may correct the offending items
// and resubmit, or fall back to item-by-item application to get per-item
// verdicts. Items are ordered inserts-before-deletes, ascending positions.
type BatchError struct {
	Items []BatchItemError
}

// Error implements error.
func (e *BatchError) Error() string {
	if len(e.Items) == 1 {
		return fmt.Sprintf("query: batch rejected: %s", e.Items[0].Error())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "query: batch rejected: %d invalid items:", len(e.Items))
	for i := range e.Items {
		b.WriteString(" [")
		b.WriteString(e.Items[i].Error())
		b.WriteString("]")
	}
	return b.String()
}

// Unwrap exposes every item error to errors.Is/As.
func (e *BatchError) Unwrap() []error {
	out := make([]error, len(e.Items))
	for i := range e.Items {
		out[i] = &e.Items[i]
	}
	return out
}

// sortItems orders the collected item errors canonically.
func (e *BatchError) sortItems() {
	slices.SortFunc(e.Items, func(a, b BatchItemError) int {
		if a.Op != b.Op {
			return int(a.Op) - int(b.Op)
		}
		return a.Pos - b.Pos
	})
}

// ApplyBatch applies a group of mutations — inserts, then deletes — as ONE
// index transition: the whole batch is validated first, applied under a
// single writeMu acquisition with a single copy-on-write tree clone, the
// store commits it as one group (one write and one fsync for a log-backed
// store), and a single snapshot publish makes every item visible at once.
// Queries therefore observe either none of the batch or all of it.
//
// The batch must be self-consistent: an id may appear at most once across
// inserts and deletes together, insert ids must not be live, delete ids
// must be live, dimensionalities must agree. On any violation NOTHING is
// applied and the returned error is a *BatchError listing every offending
// item position.
//
// The returned Stats has one entry per item (inserts first, then deletes)
// and is valid even on failure: locating a delete's rectangle costs one
// store probe, and those accesses really happened during validation, so
// callers aggregating per-request statistics stay consistent with the
// store's raw access counter.
func (ix *Index) ApplyBatch(inserts []*fuzzy.Object, deletes []uint64) ([]Stats, error) {
	started := time.Now()
	stats := make([]Stats, len(inserts)+len(deletes))
	if len(inserts)+len(deletes) == 0 {
		return stats, nil
	}
	if ix.pageCache != nil {
		return stats, fmt.Errorf("query: batch: %w: paged index is read-only", store.ErrReadOnly)
	}
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	prep, errs := ix.prepareBatch(inserts, deletes,
		identityPositions(len(inserts)), identityPositions(len(deletes)), stats, len(inserts))
	if len(errs) > 0 {
		be := &BatchError{Items: errs}
		be.sortItems()
		return stats, be
	}
	if err := prep.commit(); err != nil {
		return stats, err
	}
	spreadDuration(stats, time.Since(started))
	return stats, nil
}

// identityPositions maps a local batch slice onto itself (the unsharded
// case; a sharded coordinator passes the global positions instead).
func identityPositions(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// spreadDuration spreads one wall-clock measurement evenly across the
// per-item stats, so summing them reproduces the batch's cost without
// inflating any single item.
func spreadDuration(stats []Stats, d time.Duration) {
	if len(stats) == 0 {
		return
	}
	per := d / time.Duration(len(stats))
	for i := range stats {
		stats[i].Duration = per
	}
}

// batchPrep is a validated, uncommitted batch: the successor tree is fully
// built (deletes applied, inserts applied) but unpublished, and the store
// is untouched. Committing is the only remaining step that mutates shared
// state. The owning Index's writeMu must be held from prepare through
// commit (or through abandonment — dropping a prep is free).
type batchPrep struct {
	ix      *Index
	tree    *rtree.Tree
	dims    int
	inserts []*fuzzy.Object
	deletes []uint64
	insPos  []int // local insert index → caller position (for error mapping)
	delPos  []int
}

// prepareBatch validates the whole batch against the current snapshot and
// builds the successor tree; writeMu must be held. insPos/delPos map the
// local slices onto the caller's per-operation positions (used in item
// errors); the per-item stats slice is combined — item i of inserts
// charges stats[insPos[i]], delete j charges stats[delStatsBase +
// delPos[j]] — so a sharded coordinator passes global positions and a
// plain batch passes identities. A non-empty error list means the batch
// must not be committed; the snapshot is untouched either way.
func (ix *Index) prepareBatch(inserts []*fuzzy.Object, deletes []uint64, insPos, delPos []int, stats []Stats, delStatsBase int) (*batchPrep, []BatchItemError) {
	s := ix.read()
	var errs []BatchItemError
	insErr := func(i int, err error) { errs = append(errs, BatchItemError{Op: OpInsert, Pos: insPos[i], Err: err}) }
	delErr := func(j int, err error) { errs = append(errs, BatchItemError{Op: OpDelete, Pos: delPos[j], Err: err}) }

	if _, isMutable := ix.store.(store.Mutator); !isMutable {
		for i := range inserts {
			insErr(i, fmt.Errorf("%w: store %T has no write side", store.ErrReadOnly, ix.store))
		}
		for j := range deletes {
			delErr(j, fmt.Errorf("%w: store %T has no write side", store.ErrReadOnly, ix.store))
		}
		return nil, errs
	}

	liveness, hasLiveness := ix.store.(store.LivenessChecker)
	live := func(id uint64) (bool, bool) {
		if !hasLiveness {
			return false, false
		}
		return liveness.Live(id)
	}

	dims := s.dims
	seen := make(map[uint64]int, len(inserts)+len(deletes))
	for i, o := range inserts {
		switch {
		case o == nil:
			insErr(i, badArgf("nil object"))
			continue
		case dims != 0 && o.Dims() != dims:
			insErr(i, badArgf("object dims %d, index dims %d", o.Dims(), dims))
			continue
		}
		if dims == 0 {
			dims = o.Dims()
		}
		if _, dup := seen[o.ID()]; dup {
			insErr(i, fmt.Errorf("%w: %d (repeated in batch)", store.ErrDuplicate, o.ID()))
			continue
		}
		seen[o.ID()] = i
		if isLive, known := live(o.ID()); known && isLive {
			insErr(i, fmt.Errorf("%w: %d", store.ErrDuplicate, o.ID()))
		}
	}

	tree := s.tree.Clone()
	for j, id := range deletes {
		if _, dup := seen[id]; dup {
			delErr(j, badArgf("id %d already appears in the batch", id))
			continue
		}
		seen[id] = j
		if isLive, known := live(id); known && !isLive {
			delErr(j, fmt.Errorf("%w: id %d", store.ErrNotFound, id))
			continue
		}
		// Locate the object's rectangle (one store probe, charged to this
		// item) and carve it out of the clone; a miss in the tree means the
		// id is not indexed — tombstoned payloads still Get, so the tree is
		// the liveness authority here.
		obj, err := ix.getObject(id, &stats[delStatsBase+delPos[j]])
		if err != nil {
			delErr(j, err)
			continue
		}
		if !tree.Delete(obj.SupportMBR(), func(d any) bool { return d.(*leafItem).id == id }) {
			delErr(j, fmt.Errorf("%w: id %d not in index", store.ErrNotFound, id))
		}
	}
	if len(errs) > 0 {
		return nil, errs
	}

	// Summaries are per-object pure CPU — the expensive part of ingest —
	// so compute them across GOMAXPROCS workers before the tree work.
	items := make([]*leafItem, len(inserts))
	parallelFor(len(inserts), func(i int) {
		o := inserts[i]
		items[i] = &leafItem{id: o.ID(), approx: ix.estimator(o), rep: o.Rep()}
	})
	bulk := (*rtree.Tree)(nil)
	if len(deletes) == 0 {
		bulk = ix.bulkRebuild(tree, inserts, items)
	}
	if bulk != nil {
		tree = bulk
	} else {
		for i, o := range inserts {
			tree.Insert(o.SupportMBR(), items[i])
		}
	}
	return &batchPrep{
		ix:      ix,
		tree:    tree,
		dims:    dims,
		inserts: inserts,
		deletes: deletes,
		insPos:  insPos,
		delPos:  delPos,
	}, nil
}

// bulkRebuild is the batch ingest fast path: when a pure-insert batch is
// large relative to the tree it lands in (the bulk-ingest regime — the
// paper's §5 setting of building an index over a whole dataset before
// measuring accesses), b incremental inserts with their Guttman splits
// cost far more than rebuilding the whole tree with the STR bulk loader.
// Rebuild when the existing population is at most bulkRebuildFactor times
// the batch; past that, incremental insertion's O(b·log n) wins. Returns
// nil when the incremental path should be used — Incremental-option trees
// (the ablation that pins incremental insertion) always take it, and the
// caller routes deleting batches to it before asking. The rebuilt tree
// holds exactly the same leaf items, so
// answers are unchanged; only the node layout differs (STR-packed instead
// of split-grown), which the cross-path equivalence tests pin down.
func (ix *Index) bulkRebuild(tree *rtree.Tree, inserts []*fuzzy.Object, items []*leafItem) *rtree.Tree {
	const bulkRebuildFactor = 4
	if len(inserts) == 0 || ix.opts.Incremental || tree.Len() > bulkRebuildFactor*len(inserts) {
		return nil
	}
	all := make([]rtree.BulkItem, 0, tree.Len()+len(inserts))
	var walk func(n *rtree.Node)
	walk = func(n *rtree.Node) {
		n = n.Resolve(nil)
		for _, e := range n.Entries() {
			if n.Leaf() {
				all = append(all, rtree.BulkItem{Rect: e.Rect, Data: e.Data})
			} else {
				walk(e.Child)
			}
		}
	}
	walk(tree.Root())
	for i, o := range inserts {
		all = append(all, rtree.BulkItem{Rect: o.SupportMBR(), Data: items[i]})
	}
	return rtree.BulkLoad(all, ix.opts.MinEntries, ix.opts.MaxEntries)
}

// commit lands the prepared batch: one store group commit, then one
// snapshot publish. writeMu must still be held. A store-side rejection
// (e.g. a duplicate the index could not see because the store lacks a
// liveness probe) comes back as a *BatchError with the offending position
// and nothing published; an I/O failure comes back verbatim — the snapshot
// is not published then either, so the index never diverges from what the
// store accepted.
func (p *batchPrep) commit() error {
	if err := p.storeApply(); err != nil {
		return err
	}
	p.ix.snap.Store(&snapshot{tree: p.tree, dims: p.dims})
	return nil
}

// storeApply routes the group to the store's batch side (one write + one
// fsync for a log store), translating store item errors to batch errors.
func (p *batchPrep) storeApply() error {
	bm, ok := p.ix.store.(store.BatchMutator)
	if !ok {
		// Exotic stack without a batch side (every shipped mutable store
		// has one): fall back to item-by-item application. Validation has
		// already passed, so failures here are of the I/O class.
		m := p.ix.store.(store.Mutator)
		for _, o := range p.inserts {
			if err := p.ix.noteStoreErr(m.Insert(o)); err != nil {
				return fmt.Errorf("query: batch insert %d: %w", o.ID(), err)
			}
		}
		for _, id := range p.deletes {
			if err := p.ix.noteStoreErr(m.Delete(id)); err != nil {
				return fmt.Errorf("query: batch delete %d: %w", id, err)
			}
		}
		return nil
	}
	err := p.ix.noteStoreErr(bm.ApplyBatch(p.inserts, p.deletes))
	if err == nil {
		return nil
	}
	if ie, isItem := err.(*store.ItemError); isItem {
		item := BatchItemError{Op: OpInsert, Pos: p.insPos[ie.Pos], Err: ie.Err}
		if ie.Delete {
			item = BatchItemError{Op: OpDelete, Pos: p.delPos[ie.Pos], Err: ie.Err}
		}
		return &BatchError{Items: []BatchItemError{item}}
	}
	return fmt.Errorf("query: batch commit: %w", err)
}

// parallelFor runs fn(i) for every i in [0, n) across min(GOMAXPROCS, n)
// workers, returning when all calls have finished. fn must be safe to run
// concurrently for distinct i.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ApplyBatch applies a group of mutations across the shards: the batch is
// partitioned by ShardOf, every owning shard's writer lock is taken (in
// shard order), all sub-batches are validated and prepared in parallel, and
// only if every shard accepts does each commit — in parallel, one group
// commit and one snapshot publish per shard. A validation failure anywhere
// aborts the whole batch with nothing applied on any shard, mirroring the
// single-tree all-or-nothing contract. (As with single mutations there is
// no global snapshot: a concurrent query may see shard A's half of a batch
// before shard B publishes; each shard's view is still consistent, and
// quiescent reads match a single tree.)
//
// Stats and error positions refer to the caller's slices, exactly like
// Index.ApplyBatch.
func (sx *ShardedIndex) ApplyBatch(inserts []*fuzzy.Object, deletes []uint64) ([]Stats, error) {
	started := time.Now()
	stats := make([]Stats, len(inserts)+len(deletes))
	if len(inserts)+len(deletes) == 0 {
		return stats, nil
	}
	if err := sx.refuseIfDegraded(); err != nil {
		return nil, fmt.Errorf("query: batch: %w", err)
	}
	if err := sx.refuseIfDegraded(); err != nil {
		return nil, fmt.Errorf("query: batch: %w", err)
	}

	// Cross-shard structural validation: nil objects and a batch-wide
	// dimensionality (per-shard checks could not see a mismatch that lands
	// on two different shards of an empty index). Offending items are kept
	// out of the partition but validation still proceeds shard by shard, so
	// one rejection reports every invalid item, not just the first class
	// found.
	var errs []BatchItemError
	dims := sx.Dims()
	skip := make(map[int]bool)
	for i, o := range inserts {
		if o == nil {
			errs = append(errs, BatchItemError{Op: OpInsert, Pos: i, Err: badArgf("nil object")})
			skip[i] = true
			continue
		}
		if dims == 0 {
			dims = o.Dims()
		} else if o.Dims() != dims {
			errs = append(errs, BatchItemError{Op: OpInsert, Pos: i, Err: badArgf("object dims %d, batch/index dims %d", o.Dims(), dims)})
			skip[i] = true
		}
	}

	n := len(sx.shards)
	insBy := make([][]*fuzzy.Object, n)
	insPos := make([][]int, n)
	for i, o := range inserts {
		if skip[i] {
			continue
		}
		sh := ShardOf(o.ID(), n)
		insBy[sh] = append(insBy[sh], o)
		insPos[sh] = append(insPos[sh], i)
	}
	delBy := make([][]uint64, n)
	delPos := make([][]int, n)
	for j, id := range deletes {
		sh := ShardOf(id, n)
		delBy[sh] = append(delBy[sh], id)
		delPos[sh] = append(delPos[sh], j)
	}

	// Two-phase group commit: hold every participating shard's writer lock
	// across prepare AND commit so no shard publishes before all shards
	// have validated.
	touched := make([]int, 0, n)
	for sh := 0; sh < n; sh++ {
		if len(insBy[sh])+len(delBy[sh]) > 0 {
			touched = append(touched, sh)
		}
	}
	for _, sh := range touched {
		sx.shards[sh].writeMu.Lock()
	}
	defer func() {
		for _, sh := range touched {
			sx.shards[sh].writeMu.Unlock()
		}
	}()

	preps := make([]*batchPrep, len(touched))
	itemErrs := make([][]BatchItemError, len(touched))
	var wg sync.WaitGroup
	for ti, sh := range touched {
		wg.Add(1)
		go func(ti, sh int) {
			defer wg.Done()
			preps[ti], itemErrs[ti] = sx.shards[sh].prepareBatch(
				insBy[sh], delBy[sh], insPos[sh], delPos[sh], stats, len(inserts))
		}(ti, sh)
	}
	wg.Wait()
	for _, es := range itemErrs {
		errs = append(errs, es...)
	}
	if len(errs) > 0 {
		be := &BatchError{Items: errs}
		be.sortItems()
		return stats, be
	}

	commitErrs := make([]error, len(touched))
	for ti := range touched {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			commitErrs[ti] = preps[ti].commit()
		}(ti)
	}
	wg.Wait()
	for _, err := range commitErrs {
		if err != nil {
			// A commit-phase failure is of the I/O class (validation passed
			// everywhere); other shards may have published their
			// sub-batches — the same no-global-snapshot caveat as
			// concurrent single mutations, reported verbatim so the caller
			// does not retry item-by-item on top of a half-landed group.
			return stats, err
		}
	}
	spreadDuration(stats, time.Since(started))
	return stats, nil
}
