package query

import (
	"math"
	"slices"
	"time"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/interval"
)

// RangedResult is one RKNN answer: the object belongs to the kNN set at
// every α in Qualifying (Definition 5's ⟨A, I_A⟩ with I_A a union of
// intervals in general).
type RangedResult struct {
	ID         uint64
	Qualifying interval.Set
}

// RKNN answers the range kNN query over [alphaStart, alphaEnd] with the
// selected algorithm. Results are ordered by ascending object id.
//
// All variants return exactly the same qualifying ranges; they differ in
// cost. Distance ties are broken by smaller object id, making the kNN set —
// and therefore the output — deterministic.
//
// The paper advances between probability thresholds with "α ← α* + ε". This
// implementation steps onto the next representable float64 instead: since
// every α-distance is a step function changing only at membership levels,
// evaluating just above α* is exact and no ε tuning is needed.
func (ix *Index) RKNN(q *fuzzy.Object, k int, alphaStart, alphaEnd float64, algo RKNNAlgorithm) ([]RangedResult, Stats, error) {
	return ix.RKNNAppend(nil, q, k, alphaStart, alphaEnd, algo)
}

// RKNNAppend is RKNN appending results to dst and returning the extended
// slice. Reusing a previous answer's buffer (dst[:0]) lets the steady-state
// loop run without allocations: each reused element's Qualifying set keeps
// its backing storage and is overwritten in place, so dst's previous
// contents — including those interval sets — must no longer be referenced.
func (ix *Index) RKNNAppend(dst []RangedResult, q *fuzzy.Object, k int, alphaStart, alphaEnd float64, algo RKNNAlgorithm) ([]RangedResult, Stats, error) {
	started := time.Now()
	s := ix.read()
	if err := ix.validateQuery(s, q, k, alphaStart, alphaEnd); err != nil {
		return dst, Stats{}, err
	}
	if alphaStart > alphaEnd {
		return dst, Stats{}, badArgf("query: alphaStart %v > alphaEnd %v", alphaStart, alphaEnd)
	}
	sc := getScratch()
	defer putScratch(sc)
	sc.stats = Stats{}
	ctx := newRKNNCtx(sc, q, k, alphaStart, alphaEnd, &sc.stats)
	ctx.ix, ctx.snap = ix, s
	var err error
	switch algo {
	case Naive:
		err = ctx.naive()
	case BasicRKNN:
		err = ctx.basic()
	case RSS:
		err = ctx.rss(false)
	case RSSICR:
		err = ctx.rss(true)
	default:
		err = badArgf("query: unknown RKNN algorithm %d", int(algo))
	}
	if err == nil {
		err = ix.pagedErr()
	}
	if err != nil {
		return dst, sc.stats, err
	}
	sc.stats.Duration = time.Since(started)
	return ctx.appendResults(dst), sc.stats, nil
}

// rknnCtx carries one RKNN execution: the snapshot every sub-search runs
// against, caches of probed objects and distance profiles, and the
// per-object qualifying-range accumulator — all backed by the pooled
// scratch, so a steady-state RKNN allocates nothing. The single-tree
// drivers (naive, basic, rss) set ix/snap; the sharded coordinator builds a
// ctx with only fetch set (its candidate refinement never touches a tree).
type rknnCtx struct {
	ix       *Index
	snap     *snapshot
	q        *fuzzy.Object
	k        int
	as, ae   float64
	st       *Stats
	sc       *scratch
	probed   map[uint64]*fuzzy.Object
	profiles map[uint64]*fuzzy.Profile
	acc      map[uint64]*interval.Set
	// fetch overrides how cache-missed objects are loaded (nil = probe
	// ix's store). The sharded coordinator routes by owning shard here.
	fetch func(id uint64, st *Stats) (*fuzzy.Object, error)
}

// newRKNNCtx assembles a context over sc's cleared refinement state. The
// context itself lives in the scratch, so building one allocates nothing.
func newRKNNCtx(sc *scratch, q *fuzzy.Object, k int, as, ae float64, st *Stats) *rknnCtx {
	clear(sc.rknnProbed)
	clear(sc.rknnProfiles)
	clear(sc.rknnAcc)
	sc.resetSets()
	sc.rctx = rknnCtx{
		q: q, k: k, as: as, ae: ae, st: st, sc: sc,
		probed:   sc.rknnProbed,
		profiles: sc.rknnProfiles,
		acc:      sc.rknnAcc,
	}
	return &sc.rctx
}

func (c *rknnCtx) object(id uint64) (*fuzzy.Object, error) {
	if o, ok := c.probed[id]; ok {
		return o, nil
	}
	get := c.fetch
	if get == nil {
		get = c.ix.getObject
	}
	o, err := get(id, c.st)
	if err != nil {
		return nil, err
	}
	c.probed[id] = o
	return o, nil
}

// profile returns the (object, query) distance profile, building it at most
// once per payload: the per-query map serves repeat lookups by id, and the
// scratch's cross-query cache (keyed by object pointer) serves repeats of
// the same query so the staircase — and its memoized integral — is never
// recomputed once paid for.
func (c *rknnCtx) profile(id uint64) (*fuzzy.Profile, error) {
	if p, ok := c.profiles[id]; ok {
		return p, nil
	}
	o, err := c.object(id)
	if err != nil {
		return nil, err
	}
	c.st.ProfilesBuilt++
	p := c.sc.profiles.Profile(o, c.q)
	c.profiles[id] = p
	return p, nil
}

func (c *rknnCtx) add(id uint64, iv interval.Interval) {
	s, ok := c.acc[id]
	if !ok {
		s = c.sc.takeSet()
		c.acc[id] = s
	}
	s.Add(iv)
}

// appendResults copies the accumulated qualifying ranges into dst in
// ascending id order. Reused dst elements keep their Qualifying backing
// (CopyFrom overwrites in place), so nothing handed to the caller aliases
// scratch-owned interval storage.
func (c *rknnCtx) appendResults(dst []RangedResult) []RangedResult {
	ids := c.sc.ids[:0]
	for id := range c.acc {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	c.sc.ids = ids
	for _, id := range ids {
		if len(dst) < cap(dst) {
			dst = dst[:len(dst)+1] // revive a dead element, reusing its backing
		} else {
			dst = append(dst, RangedResult{})
		}
		el := &dst[len(dst)-1]
		el.ID = id
		el.Qualifying.CopyFrom(*c.acc[id])
	}
	return dst
}

// justAbove returns the smallest float64 strictly greater than x — the exact
// realization of the paper's α* + ε.
func justAbove(x float64) float64 { return math.Nextafter(x, 2) }

// subAKNN runs an AKNN sub-search with the LB variant (exact distances, no
// unprobed results), sharing the context's probe cache and reusing any
// staircase values refinement has already paid for. The returned slice is
// scratch-owned and valid until the next subAKNN call.
func (c *rknnCtx) subAKNN(alpha float64) ([]Result, error) {
	c.st.AKNNCalls++
	res, err := c.ix.aknnInto(c.sc, c.sc.sub[:0], c.snap, c.q, c.k, alpha, LB, c.probed, &c.sc.profiles, c.st)
	if err != nil {
		return nil, err
	}
	c.sc.sub = res
	return res, nil
}

// basic implements Algorithm 3: evaluate the kNN set, extend each member to
// its next critical probability (Lemma 2), hop to the smallest one, repeat.
func (c *rknnCtx) basic() error {
	alphaRep := c.as
	start, startOpen := c.as, false
	for {
		c.st.Pieces++
		results, err := c.subAKNN(alphaRep)
		if err != nil {
			return err
		}
		if len(results) == 0 {
			return nil // empty index
		}
		alphaStar := math.Inf(1)
		for _, r := range results {
			prof, err := c.profile(r.ID)
			if err != nil {
				return err
			}
			beta := prof.NextCritical(alphaRep)
			c.add(r.ID, interval.Make(start, math.Min(beta, c.ae), startOpen, false))
			if beta < alphaStar {
				alphaStar = beta
			}
		}
		if alphaStar >= c.ae {
			return nil
		}
		start, startOpen = alphaStar, true
		alphaRep = justAbove(alphaStar)
	}
}

// naive implements the strawman: one AKNN per plateau of the global
// membership-level set U_D (plus the query's own levels) inside the range.
func (c *rknnCtx) naive() error {
	// Collect the global level universe; the naive method pays for reading
	// every object (of the snapshot, so the result is churn-consistent).
	var levels []float64
	for _, id := range c.snap.leafIDs(c.st) {
		o, err := c.object(id)
		if err != nil {
			return err
		}
		levels = append(levels, o.Levels()...)
	}
	levels = append(levels, c.q.Levels()...)
	slices.Sort(levels)
	levels = dedupeInWindow(levels, c.as, c.ae)

	for _, p := range makePieces(c.as, c.ae, levels) {
		c.st.Pieces++
		results, err := c.subAKNN(p.rep)
		if err != nil {
			return err
		}
		for _, r := range results {
			c.add(r.ID, p.iv)
		}
	}
	return nil
}

// piece is one plateau of the queried range: the kNN set is constant on iv
// and can be evaluated at rep ∈ iv.
type piece struct {
	iv  interval.Interval
	rep float64
}

// makePieces splits [as, ae] at the given ascending, deduplicated levels
// (all within [as, ae]). Distances are constant between consecutive levels,
// so each returned piece carries one kNN set.
func makePieces(as, ae float64, levels []float64) []piece {
	if len(levels) == 0 {
		return []piece{{iv: interval.Closed(as, ae), rep: ae}}
	}
	var ps []piece
	ps = append(ps, piece{iv: interval.Closed(as, levels[0]), rep: levels[0]})
	for i := 1; i < len(levels); i++ {
		ps = append(ps, piece{iv: interval.OpenClosed(levels[i-1], levels[i]), rep: levels[i]})
	}
	if last := levels[len(levels)-1]; last < ae {
		ps = append(ps, piece{iv: interval.OpenClosed(last, ae), rep: ae})
	}
	return ps
}

func dedupeInWindow(sorted []float64, lo, hi float64) []float64 {
	out := sorted[:0]
	for _, v := range sorted {
		if v < lo || v > hi {
			continue
		}
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// rss implements Algorithms 4 and 5: one AKNN at αe yields the pruning
// radius (Lemma 3); one range search at αs yields the candidate set; the
// candidates are refined in memory — by critical-probability hopping (RSS)
// or with Lemma 4 safe ranges (RSS-ICR).
func (c *rknnCtx) rss(improvedRefinement bool) error {
	resE, err := c.subAKNN(c.ae)
	if err != nil {
		return err
	}
	if len(resE) == 0 {
		return nil // empty index
	}
	radius := math.Inf(1)
	if len(resE) >= c.k {
		radius = resE[len(resE)-1].Dist
	}
	objs, _, err := c.ix.rangeSearch(c.sc, c.snap, c.q, c.as, radius, true, c.st)
	if err != nil {
		return err
	}
	c.st.Candidates = len(objs)
	cands := c.sc.cands[:0]
	for id, o := range objs {
		c.probed[id] = o
		cands = append(cands, id)
	}
	slices.Sort(cands)
	c.sc.cands = cands
	// Profiles for every candidate: pure CPU, no further object access.
	for _, id := range cands {
		if _, err := c.profile(id); err != nil {
			return err
		}
	}
	if improvedRefinement {
		return c.refineICR(cands)
	}
	return c.refineBasic(cands)
}

// refineBasic refines candidates with the basic method (Algorithm 3's loop
// over the in-memory candidate set): every critical probability of every
// current member is visited.
func (c *rknnCtx) refineBasic(cands []uint64) error {
	if len(cands) == 0 {
		return nil
	}
	alphaRep := c.as
	start, startOpen := c.as, false
	for {
		c.st.Pieces++
		members := c.topK(c.sc.members[:0], cands, alphaRep, c.k, nil)
		c.sc.members = members
		alphaStar := math.Inf(1)
		for _, id := range members {
			prof := c.profiles[id]
			beta := prof.NextCritical(alphaRep)
			c.add(id, interval.Make(start, math.Min(beta, c.ae), startOpen, false))
			if beta < alphaStar {
				alphaStar = beta
			}
		}
		if alphaStar >= c.ae {
			return nil
		}
		start, startOpen = alphaStar, true
		alphaRep = justAbove(alphaStar)
	}
}

// refineICR refines candidates with Lemma 4: each fresh member receives a
// safe range reaching as far as its distance stays below the (k+1)-th
// nearest-neighbor distance, and whole runs of critical probabilities are
// skipped by hopping to the smallest safe-range end among the members.
func (c *rknnCtx) refineICR(cands []uint64) error {
	if len(cands) == 0 {
		return nil
	}
	clear(c.sc.safeUntil)
	safeUntil := c.sc.safeUntil
	alphaRep := c.as
	start, startOpen := c.as, false
	for {
		c.st.Pieces++
		// C′: members whose safe range still covers the current plateau.
		clear(c.sc.inCPrime)
		inCPrime := c.sc.inCPrime
		members := c.sc.members[:0]
		for id, su := range safeUntil {
			if su >= alphaRep {
				inCPrime[id] = true
				members = append(members, id)
			}
		}
		fresh := c.topK(c.sc.fresh[:0], cands, alphaRep, c.k-len(members), inCPrime)
		c.sc.fresh = fresh
		members = append(members, fresh...)
		c.sc.members = members

		dk1 := c.kPlus1Dist(cands, alphaRep)
		for _, id := range fresh {
			su := safeRangeEnd(c.profiles[id], alphaRep, dk1)
			safeUntil[id] = su
			c.add(id, interval.Make(start, math.Min(su, c.ae), startOpen, false))
		}
		alphaStar := math.Inf(1)
		for _, id := range members {
			if su := safeUntil[id]; su < alphaStar {
				alphaStar = su
			}
		}
		if alphaStar >= c.ae {
			return nil
		}
		start, startOpen = alphaStar, true
		alphaRep = justAbove(alphaStar)
	}
}

// topK ranks candidates (minus excluded ones) by (d_α, id) and appends the
// best n ids to dst.
func (c *rknnCtx) topK(dst []uint64, cands []uint64, alpha float64, n int, exclude map[uint64]bool) []uint64 {
	if n <= 0 {
		return dst
	}
	pool := c.sc.idDists[:0]
	for _, id := range cands {
		if exclude[id] {
			continue
		}
		pool = append(pool, idDist{id: id, d: c.profiles[id].Dist(alpha)})
	}
	sortIDDists(pool)
	if len(pool) > n {
		pool = pool[:n]
	}
	for _, p := range pool {
		dst = append(dst, p.id)
	}
	c.sc.idDists = pool[:0]
	return dst
}

// kPlus1Dist returns the (k+1)-th smallest candidate distance at alpha, or
// +Inf when at most k candidates exist (then every member is safe forever).
func (c *rknnCtx) kPlus1Dist(cands []uint64, alpha float64) float64 {
	if len(cands) <= c.k {
		return math.Inf(1)
	}
	ds := c.sc.f64s[:0]
	for _, id := range cands {
		ds = append(ds, c.profiles[id].Dist(alpha))
	}
	slices.Sort(ds)
	c.sc.f64s = ds
	return ds[c.k]
}

// safeRangeEnd returns the largest membership level through which the
// profile's distance stays strictly below dk1 (Lemma 4). It is never less
// than the right end of alpha's own plateau: on that plateau the member's
// distance is constant while every other object's can only grow, so
// membership in the kNN set is retained regardless of dk1 (ties included).
func safeRangeEnd(prof *fuzzy.Profile, alpha, dk1 float64) float64 {
	j, _ := slices.BinarySearch(prof.Levels, alpha)
	end := prof.Levels[j]
	for j++; j < len(prof.Levels) && prof.Dists[j] < dk1; j++ {
		end = prof.Levels[j]
	}
	return end
}
