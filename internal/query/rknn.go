package query

import (
	"math"
	"sort"
	"time"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/interval"
)

// RangedResult is one RKNN answer: the object belongs to the kNN set at
// every α in Qualifying (Definition 5's ⟨A, I_A⟩ with I_A a union of
// intervals in general).
type RangedResult struct {
	ID         uint64
	Qualifying interval.Set
}

// RKNN answers the range kNN query over [alphaStart, alphaEnd] with the
// selected algorithm. Results are ordered by ascending object id.
//
// All variants return exactly the same qualifying ranges; they differ in
// cost. Distance ties are broken by smaller object id, making the kNN set —
// and therefore the output — deterministic.
//
// The paper advances between probability thresholds with "α ← α* + ε". This
// implementation steps onto the next representable float64 instead: since
// every α-distance is a step function changing only at membership levels,
// evaluating just above α* is exact and no ε tuning is needed.
func (ix *Index) RKNN(q *fuzzy.Object, k int, alphaStart, alphaEnd float64, algo RKNNAlgorithm) ([]RangedResult, Stats, error) {
	started := time.Now()
	var st Stats
	s := ix.read()
	if err := ix.validateQuery(s, q, k, alphaStart, alphaEnd); err != nil {
		return nil, st, err
	}
	if alphaStart > alphaEnd {
		return nil, st, badArgf("query: alphaStart %v > alphaEnd %v", alphaStart, alphaEnd)
	}
	ctx := &rknnCtx{
		ix: ix, snap: s, q: q, k: k, as: alphaStart, ae: alphaEnd, st: &st,
		probed:   make(map[uint64]*fuzzy.Object),
		profiles: make(map[uint64]*fuzzy.Profile),
		acc:      make(map[uint64]*interval.Set),
	}
	var err error
	switch algo {
	case Naive:
		err = ctx.naive()
	case BasicRKNN:
		err = ctx.basic()
	case RSS:
		err = ctx.rss(false)
	case RSSICR:
		err = ctx.rss(true)
	default:
		err = badArgf("query: unknown RKNN algorithm %d", int(algo))
	}
	if err != nil {
		return nil, st, err
	}
	st.Duration = time.Since(started)
	return ctx.results(), st, nil
}

// rknnCtx carries one RKNN execution: the snapshot every sub-search runs
// against, caches of probed objects and distance profiles, and the
// per-object qualifying-range accumulator. The single-tree drivers (naive,
// basic, rss) set ix/snap; the sharded coordinator builds a ctx with only
// fetch set (its candidate refinement never touches a tree).
type rknnCtx struct {
	ix       *Index
	snap     *snapshot
	q        *fuzzy.Object
	k        int
	as, ae   float64
	st       *Stats
	probed   map[uint64]*fuzzy.Object
	profiles map[uint64]*fuzzy.Profile
	acc      map[uint64]*interval.Set
	// fetch overrides how cache-missed objects are loaded (nil = probe
	// ix's store). The sharded coordinator routes by owning shard here.
	fetch func(id uint64, st *Stats) (*fuzzy.Object, error)
}

func (c *rknnCtx) object(id uint64) (*fuzzy.Object, error) {
	if o, ok := c.probed[id]; ok {
		return o, nil
	}
	get := c.fetch
	if get == nil {
		get = c.ix.getObject
	}
	o, err := get(id, c.st)
	if err != nil {
		return nil, err
	}
	c.probed[id] = o
	return o, nil
}

func (c *rknnCtx) profile(id uint64) (*fuzzy.Profile, error) {
	if p, ok := c.profiles[id]; ok {
		return p, nil
	}
	o, err := c.object(id)
	if err != nil {
		return nil, err
	}
	c.st.ProfilesBuilt++
	p := fuzzy.ComputeProfile(o, c.q)
	c.profiles[id] = p
	return p, nil
}

func (c *rknnCtx) add(id uint64, iv interval.Interval) {
	s, ok := c.acc[id]
	if !ok {
		s = &interval.Set{}
		c.acc[id] = s
	}
	s.Add(iv)
}

func (c *rknnCtx) results() []RangedResult {
	out := make([]RangedResult, 0, len(c.acc))
	for id, s := range c.acc {
		out = append(out, RangedResult{ID: id, Qualifying: *s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// justAbove returns the smallest float64 strictly greater than x — the exact
// realization of the paper's α* + ε.
func justAbove(x float64) float64 { return math.Nextafter(x, 2) }

// subAKNN runs an AKNN sub-search with the LB variant (exact distances, no
// unprobed results) and merges its probes into the context cache.
func (c *rknnCtx) subAKNN(alpha float64) ([]Result, error) {
	c.st.AKNNCalls++
	res, probed, err := c.ix.aknn(c.snap, c.q, c.k, alpha, LB, c.st)
	if err != nil {
		return nil, err
	}
	for id, o := range probed {
		c.probed[id] = o
	}
	return res, nil
}

// basic implements Algorithm 3: evaluate the kNN set, extend each member to
// its next critical probability (Lemma 2), hop to the smallest one, repeat.
func (c *rknnCtx) basic() error {
	alphaRep := c.as
	start, startOpen := c.as, false
	for {
		c.st.Pieces++
		results, err := c.subAKNN(alphaRep)
		if err != nil {
			return err
		}
		if len(results) == 0 {
			return nil // empty index
		}
		alphaStar := math.Inf(1)
		for _, r := range results {
			prof, err := c.profile(r.ID)
			if err != nil {
				return err
			}
			beta := prof.NextCritical(alphaRep)
			c.add(r.ID, interval.Make(start, math.Min(beta, c.ae), startOpen, false))
			if beta < alphaStar {
				alphaStar = beta
			}
		}
		if alphaStar >= c.ae {
			return nil
		}
		start, startOpen = alphaStar, true
		alphaRep = justAbove(alphaStar)
	}
}

// naive implements the strawman: one AKNN per plateau of the global
// membership-level set U_D (plus the query's own levels) inside the range.
func (c *rknnCtx) naive() error {
	// Collect the global level universe; the naive method pays for reading
	// every object (of the snapshot, so the result is churn-consistent).
	var levels []float64
	for _, id := range c.snap.leafIDs() {
		o, err := c.object(id)
		if err != nil {
			return err
		}
		levels = append(levels, o.Levels()...)
	}
	levels = append(levels, c.q.Levels()...)
	sort.Float64s(levels)
	levels = dedupeInWindow(levels, c.as, c.ae)

	for _, p := range makePieces(c.as, c.ae, levels) {
		c.st.Pieces++
		results, err := c.subAKNN(p.rep)
		if err != nil {
			return err
		}
		for _, r := range results {
			c.add(r.ID, p.iv)
		}
	}
	return nil
}

// piece is one plateau of the queried range: the kNN set is constant on iv
// and can be evaluated at rep ∈ iv.
type piece struct {
	iv  interval.Interval
	rep float64
}

// makePieces splits [as, ae] at the given ascending, deduplicated levels
// (all within [as, ae]). Distances are constant between consecutive levels,
// so each returned piece carries one kNN set.
func makePieces(as, ae float64, levels []float64) []piece {
	if len(levels) == 0 {
		return []piece{{iv: interval.Closed(as, ae), rep: ae}}
	}
	var ps []piece
	ps = append(ps, piece{iv: interval.Closed(as, levels[0]), rep: levels[0]})
	for i := 1; i < len(levels); i++ {
		ps = append(ps, piece{iv: interval.OpenClosed(levels[i-1], levels[i]), rep: levels[i]})
	}
	if last := levels[len(levels)-1]; last < ae {
		ps = append(ps, piece{iv: interval.OpenClosed(last, ae), rep: ae})
	}
	return ps
}

func dedupeInWindow(sorted []float64, lo, hi float64) []float64 {
	out := sorted[:0]
	for _, v := range sorted {
		if v < lo || v > hi {
			continue
		}
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// rss implements Algorithms 4 and 5: one AKNN at αe yields the pruning
// radius (Lemma 3); one range search at αs yields the candidate set; the
// candidates are refined in memory — by critical-probability hopping (RSS)
// or with Lemma 4 safe ranges (RSS-ICR).
func (c *rknnCtx) rss(improvedRefinement bool) error {
	resE, err := c.subAKNN(c.ae)
	if err != nil {
		return err
	}
	if len(resE) == 0 {
		return nil // empty index
	}
	radius := math.Inf(1)
	if len(resE) >= c.k {
		radius = resE[len(resE)-1].Dist
	}
	objs, _, err := c.ix.rangeSearch(c.snap, c.q, c.as, radius, true, c.st)
	if err != nil {
		return err
	}
	c.st.Candidates = len(objs)
	cands := make([]uint64, 0, len(objs))
	for id, o := range objs {
		c.probed[id] = o
		cands = append(cands, id)
	}
	sortIDs(cands)
	// Profiles for every candidate: pure CPU, no further object access.
	for _, id := range cands {
		if _, err := c.profile(id); err != nil {
			return err
		}
	}
	if improvedRefinement {
		return c.refineICR(cands)
	}
	return c.refineBasic(cands)
}

// refineBasic refines candidates with the basic method (Algorithm 3's loop
// over the in-memory candidate set): every critical probability of every
// current member is visited.
func (c *rknnCtx) refineBasic(cands []uint64) error {
	if len(cands) == 0 {
		return nil
	}
	alphaRep := c.as
	start, startOpen := c.as, false
	for {
		c.st.Pieces++
		members := c.topK(cands, alphaRep, c.k, nil)
		alphaStar := math.Inf(1)
		for _, id := range members {
			prof := c.profiles[id]
			beta := prof.NextCritical(alphaRep)
			c.add(id, interval.Make(start, math.Min(beta, c.ae), startOpen, false))
			if beta < alphaStar {
				alphaStar = beta
			}
		}
		if alphaStar >= c.ae {
			return nil
		}
		start, startOpen = alphaStar, true
		alphaRep = justAbove(alphaStar)
	}
}

// refineICR refines candidates with Lemma 4: each fresh member receives a
// safe range reaching as far as its distance stays below the (k+1)-th
// nearest-neighbor distance, and whole runs of critical probabilities are
// skipped by hopping to the smallest safe-range end among the members.
func (c *rknnCtx) refineICR(cands []uint64) error {
	if len(cands) == 0 {
		return nil
	}
	safeUntil := make(map[uint64]float64)
	alphaRep := c.as
	start, startOpen := c.as, false
	for {
		c.st.Pieces++
		// C′: members whose safe range still covers the current plateau.
		inCPrime := make(map[uint64]bool)
		var members []uint64
		for id, su := range safeUntil {
			if su >= alphaRep {
				inCPrime[id] = true
				members = append(members, id)
			}
		}
		fresh := c.topK(cands, alphaRep, c.k-len(members), inCPrime)
		members = append(members, fresh...)

		dk1 := c.kPlus1Dist(cands, alphaRep)
		for _, id := range fresh {
			su := safeRangeEnd(c.profiles[id], alphaRep, dk1)
			safeUntil[id] = su
			c.add(id, interval.Make(start, math.Min(su, c.ae), startOpen, false))
		}
		alphaStar := math.Inf(1)
		for _, id := range members {
			if su := safeUntil[id]; su < alphaStar {
				alphaStar = su
			}
		}
		if alphaStar >= c.ae {
			return nil
		}
		start, startOpen = alphaStar, true
		alphaRep = justAbove(alphaStar)
	}
}

// topK ranks candidates (minus excluded ones) by (d_α, id) and returns the
// best n ids.
func (c *rknnCtx) topK(cands []uint64, alpha float64, n int, exclude map[uint64]bool) []uint64 {
	if n <= 0 {
		return nil
	}
	type cd struct {
		id uint64
		d  float64
	}
	var pool []cd
	for _, id := range cands {
		if exclude[id] {
			continue
		}
		pool = append(pool, cd{id: id, d: c.profiles[id].Dist(alpha)})
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].d != pool[j].d {
			return pool[i].d < pool[j].d
		}
		return pool[i].id < pool[j].id
	})
	if len(pool) > n {
		pool = pool[:n]
	}
	out := make([]uint64, len(pool))
	for i, p := range pool {
		out[i] = p.id
	}
	return out
}

// kPlus1Dist returns the (k+1)-th smallest candidate distance at alpha, or
// +Inf when at most k candidates exist (then every member is safe forever).
func (c *rknnCtx) kPlus1Dist(cands []uint64, alpha float64) float64 {
	if len(cands) <= c.k {
		return math.Inf(1)
	}
	ds := make([]float64, len(cands))
	for i, id := range cands {
		ds[i] = c.profiles[id].Dist(alpha)
	}
	sort.Float64s(ds)
	return ds[c.k]
}

// safeRangeEnd returns the largest membership level through which the
// profile's distance stays strictly below dk1 (Lemma 4). It is never less
// than the right end of alpha's own plateau: on that plateau the member's
// distance is constant while every other object's can only grow, so
// membership in the kNN set is retained regardless of dk1 (ties included).
func safeRangeEnd(prof *fuzzy.Profile, alpha, dk1 float64) float64 {
	j := sort.SearchFloat64s(prof.Levels, alpha)
	end := prof.Levels[j]
	for j++; j < len(prof.Levels) && prof.Dists[j] < dk1; j++ {
		end = prof.Levels[j]
	}
	return end
}
