package query

import (
	"math/rand/v2"
	"sort"
	"testing"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/interval"
)

// bruteRKNN is the plateau-exact reference: it evaluates the kNN set on
// every plateau of the union level set using brute-force profiles.
func bruteRKNN(objs []*fuzzy.Object, q *fuzzy.Object, k int, as, ae float64) []RangedResult {
	profiles := make(map[uint64]*fuzzy.Profile, len(objs))
	var levels []float64
	for _, o := range objs {
		p := fuzzy.ComputeProfileBrute(o, q)
		profiles[o.ID()] = p
		levels = append(levels, p.Levels...)
	}
	sort.Float64s(levels)
	levels = dedupeInWindow(levels, as, ae)

	acc := make(map[uint64]*interval.Set)
	for _, pc := range makePieces(as, ae, levels) {
		type cd struct {
			id uint64
			d  float64
		}
		var pool []cd
		for _, o := range objs {
			pool = append(pool, cd{id: o.ID(), d: profiles[o.ID()].Dist(pc.rep)})
		}
		sort.Slice(pool, func(i, j int) bool {
			if pool[i].d != pool[j].d {
				return pool[i].d < pool[j].d
			}
			return pool[i].id < pool[j].id
		})
		if len(pool) > k {
			pool = pool[:k]
		}
		for _, p := range pool {
			s, ok := acc[p.id]
			if !ok {
				s = &interval.Set{}
				acc[p.id] = s
			}
			s.Add(pc.iv)
		}
	}
	out := make([]RangedResult, 0, len(acc))
	for id, s := range acc {
		out = append(out, RangedResult{ID: id, Qualifying: *s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func checkSameRanged(t *testing.T, got, want []RangedResult, label string) {
	t.Helper()
	if len(got) != len(want) {
		gids := make([]uint64, len(got))
		for i, r := range got {
			gids[i] = r.ID
		}
		wids := make([]uint64, len(want))
		for i, r := range want {
			wids[i] = r.ID
		}
		t.Fatalf("%s: %d results %v, want %d results %v", label, len(got), gids, len(want), wids)
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: result %d id %d, want %d", label, i, got[i].ID, want[i].ID)
		}
		if !got[i].Qualifying.Equal(want[i].Qualifying) {
			t.Fatalf("%s: object %d qualifying range %v, want %v",
				label, got[i].ID, got[i].Qualifying, want[i].Qualifying)
		}
	}
}

func TestRKNNAllVariantsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 1))
	algos := []RKNNAlgorithm{Naive, BasicRKNN, RSS, RSSICR}
	for trial := 0; trial < 10; trial++ {
		n := 15 + rng.IntN(40)
		quant := []int{4, 8, 16}[trial%3] // quantized levels force shared plateaus
		objs := makeObjects(rng, n, 8+rng.IntN(25), 10, quant)
		ix := buildIndex(t, objs, Options{MinEntries: 2, MaxEntries: 6})
		q := makeQuery(rng, 20, 10, quant)
		for _, cfg := range []struct {
			k      int
			as, ae float64
		}{
			{2, 0.3, 0.6},
			{5, 0.1, 0.9},
			{1, 0.5, 0.5}, // degenerate single-point range
			{3, 0.8, 1.0},
			{n + 3, 0.3, 0.7}, // k exceeds dataset
		} {
			want := bruteRKNN(objs, q, cfg.k, cfg.as, cfg.ae)
			for _, algo := range algos {
				got, _, err := ix.RKNN(q, cfg.k, cfg.as, cfg.ae, algo)
				if err != nil {
					t.Fatalf("trial %d %v k=%d [%v,%v]: %v", trial, algo, cfg.k, cfg.as, cfg.ae, err)
				}
				checkSameRanged(t, got, want, algo.String())
			}
		}
	}
}

func TestRKNNContinuousMemberships(t *testing.T) {
	// Continuous (unquantized) memberships: every point its own level.
	rng := rand.New(rand.NewPCG(103, 2))
	objs := makeObjects(rng, 20, 12, 8, 0)
	ix := buildIndex(t, objs, Options{})
	q := makeQuery(rng, 12, 8, 0)
	want := bruteRKNN(objs, q, 3, 0.2, 0.8)
	for _, algo := range []RKNNAlgorithm{BasicRKNN, RSS, RSSICR} {
		got, _, err := ix.RKNN(q, 3, 0.2, 0.8, algo)
		if err != nil {
			t.Fatal(err)
		}
		checkSameRanged(t, got, want, algo.String())
	}
}

func TestRKNNQualifyingRangesCoverWholeWindow(t *testing.T) {
	// At every α in the window, exactly min(k, n) objects must qualify.
	rng := rand.New(rand.NewPCG(105, 3))
	objs := makeObjects(rng, 30, 10, 10, 8)
	ix := buildIndex(t, objs, Options{})
	q := makeQuery(rng, 10, 10, 8)
	k, as, ae := 4, 0.25, 0.85
	got, _, err := ix.RKNN(q, k, as, ae, RSSICR)
	if err != nil {
		t.Fatal(err)
	}
	for alpha := as; alpha <= ae; alpha += 0.01 {
		count := 0
		for _, r := range got {
			if r.Qualifying.Contains(alpha) {
				count++
			}
		}
		if count != k {
			t.Fatalf("alpha %v: %d qualifying objects, want %d", alpha, count, k)
		}
	}
}

func TestRSSAndICRSameObjectAccesses(t *testing.T) {
	// Both share the candidate acquisition (one AKNN + one range search), so
	// their object access counts must coincide (paper §6.3.1); ICR only cuts
	// CPU work, visible as fewer refinement pieces.
	rng := rand.New(rand.NewPCG(107, 4))
	objs := makeObjects(rng, 120, 12, 15, 8)
	ix := buildIndex(t, objs, Options{})
	var piecesRSS, piecesICR int
	for trial := 0; trial < 8; trial++ {
		q := makeQuery(rng, 12, 15, 8)
		_, stRSS, err := ix.RKNN(q, 5, 0.3, 0.7, RSS)
		if err != nil {
			t.Fatal(err)
		}
		_, stICR, err := ix.RKNN(q, 5, 0.3, 0.7, RSSICR)
		if err != nil {
			t.Fatal(err)
		}
		if stRSS.ObjectAccesses != stICR.ObjectAccesses {
			t.Fatalf("object accesses differ: RSS %d, ICR %d",
				stRSS.ObjectAccesses, stICR.ObjectAccesses)
		}
		if stRSS.Candidates != stICR.Candidates {
			t.Fatalf("candidate counts differ: %d vs %d", stRSS.Candidates, stICR.Candidates)
		}
		piecesRSS += stRSS.Pieces
		piecesICR += stICR.Pieces
	}
	if piecesICR > piecesRSS {
		t.Fatalf("ICR refinement pieces (%d) exceed RSS (%d)", piecesICR, piecesRSS)
	}
}

func TestRKNNOptimizedBeatBasicOnAccesses(t *testing.T) {
	rng := rand.New(rand.NewPCG(109, 5))
	objs := makeObjects(rng, 150, 12, 15, 8)
	ix := buildIndex(t, objs, Options{})
	var basicAcc, rssAcc int
	for trial := 0; trial < 5; trial++ {
		q := makeQuery(rng, 12, 15, 8)
		_, st, err := ix.RKNN(q, 5, 0.3, 0.7, BasicRKNN)
		if err != nil {
			t.Fatal(err)
		}
		basicAcc += st.ObjectAccesses
		_, st, err = ix.RKNN(q, 5, 0.3, 0.7, RSS)
		if err != nil {
			t.Fatal(err)
		}
		rssAcc += st.ObjectAccesses
	}
	if rssAcc > basicAcc {
		t.Fatalf("RSS accesses (%d) exceed Basic RKNN (%d)", rssAcc, basicAcc)
	}
}

func TestRKNNValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(111, 6))
	objs := makeObjects(rng, 10, 8, 10, 4)
	ix := buildIndex(t, objs, Options{})
	q := makeQuery(rng, 8, 10, 4)
	if _, _, err := ix.RKNN(q, 3, 0.7, 0.3, RSS); err == nil {
		t.Error("inverted range accepted")
	}
	if _, _, err := ix.RKNN(q, 0, 0.3, 0.7, RSS); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := ix.RKNN(q, 3, 0, 0.7, RSS); err == nil {
		t.Error("alphaStart=0 accepted")
	}
	if _, _, err := ix.RKNN(q, 3, 0.3, 1.5, RSS); err == nil {
		t.Error("alphaEnd>1 accepted")
	}
	if _, _, err := ix.RKNN(q, 3, 0.3, 0.7, RKNNAlgorithm(42)); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRKNNEmptyIndex(t *testing.T) {
	rng := rand.New(rand.NewPCG(113, 7))
	ix := buildIndex(t, nil, Options{})
	q := makeQuery(rng, 8, 10, 4)
	for _, algo := range []RKNNAlgorithm{Naive, BasicRKNN, RSS, RSSICR} {
		got, _, err := ix.RKNN(q, 3, 0.3, 0.7, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(got) != 0 {
			t.Fatalf("%v: %d results from empty index", algo, len(got))
		}
	}
}

func TestRKNNPaperStyleScenario(t *testing.T) {
	// A constructed scenario in the spirit of Figure 3: three objects whose
	// α-distance curves cross inside the window, so the 2NN set changes and
	// one object's qualifying range is a proper sub-interval.
	mk := func(id uint64, xs ...float64) *fuzzy.Object {
		// Points on a line at x = xs[i] with membership decreasing with i;
		// the first point is the kernel.
		wps := make([]fuzzy.WeightedPoint, len(xs))
		for i, x := range xs {
			mu := 1 - float64(i)*0.3
			wps[i] = fuzzy.WeightedPoint{P: geom2(x), Mu: mu}
		}
		return fuzzy.MustNew(id, wps)
	}
	// Query: single kernel point at origin.
	q := fuzzy.MustNew(100, []fuzzy.WeightedPoint{{P: geom2(0), Mu: 1}})
	// A: very close at all levels.
	a := mk(1, 1)
	// B: close at low α (outer point at 2), far at high α (kernel at 6).
	b := mk(2, 6, 2)
	// C: constant middle distance 4.
	c := mk(3, 4)
	ix := buildIndex(t, []*fuzzy.Object{a, b, c}, Options{})

	got, _, err := ix.RKNN(q, 2, 0.3, 1.0, RSSICR)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteRKNN([]*fuzzy.Object{a, b, c}, q, 2, 0.3, 1.0)
	checkSameRanged(t, got, want, "paper-style")

	// A qualifies everywhere; B only while its outer point counts (µ=0.7);
	// C takes over beyond.
	byID := map[uint64]interval.Set{}
	for _, r := range got {
		byID[r.ID] = r.Qualifying
	}
	if !byID[1].Contains(0.3) || !byID[1].Contains(1.0) {
		t.Fatalf("A should qualify across the window: %v", byID[1])
	}
	if !byID[2].Contains(0.7) || byID[2].Contains(0.9) {
		t.Fatalf("B should qualify at 0.7 but not 0.9: %v", byID[2])
	}
	if byID[3].Contains(0.5) || !byID[3].Contains(0.9) {
		t.Fatalf("C should qualify at 0.9 but not 0.5: %v", byID[3])
	}
}

func geom2(x float64) []float64 { return []float64{x, 0} }
