package query

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/geom"
	"fuzzyknn/internal/rtree"
)

// The paper closes by naming spatial join queries among the advanced
// queries its framework opens up (§8); its own distance evaluation is the
// closest-pair primitive of Corral et al. (cited as [9]). This file
// implements both for fuzzy objects:
//
//   - DistanceJoin: all pairs (a, b) with d_α(a, b) ≤ eps — the fuzzy
//     analogue of an ε-distance join, via synchronized R-tree traversal
//     with the §3.2 conservative MBR approximations as pruning bounds.
//   - KClosestPairs: the k pairs with smallest d_α — an incremental
//     best-first search over entry pairs.
//
// Both support self-joins (left == right), in which case each unordered
// pair is reported once with LeftID < RightID.

// JoinPair is one result pair of a join query.
type JoinPair struct {
	LeftID, RightID uint64
	Dist            float64
}

// DistanceJoin returns every pair (a ∈ left, b ∈ right) with
// d_α(a, b) ≤ eps, ordered by (Dist, LeftID, RightID). Objects are probed
// at most once per side; Stats.ObjectAccesses counts probes on both sides.
func DistanceJoin(left, right *Index, alpha, eps float64) ([]JoinPair, Stats, error) {
	started := time.Now()
	var st Stats
	selfJoin := left == right
	sl, sr := joinSnapshots(left, right)
	if err := validateJoin(left, right, sl, sr, alpha); err != nil {
		return nil, st, err
	}
	if eps < 0 || math.IsNaN(eps) {
		return nil, st, fmt.Errorf("query: join epsilon must be non-negative, got %v", eps)
	}

	leftObjs := make(map[uint64]*fuzzy.Object)
	rightObjs := leftObjs
	if !selfJoin {
		rightObjs = make(map[uint64]*fuzzy.Object)
	}
	probe := func(ix *Index, cache map[uint64]*fuzzy.Object, it *leafItem) (*fuzzy.Object, error) {
		if o, ok := cache[it.id]; ok {
			return o, nil
		}
		o, err := ix.getObject(it.id, &st)
		if err != nil {
			return nil, err
		}
		cache[it.id] = o
		return o, nil
	}

	var out []JoinPair
	var walk func(a, b *rtree.Node) error
	walk = func(a, b *rtree.Node) error {
		st.NodeAccesses++
		switch {
		case !a.Leaf() && !b.Leaf():
			for _, ea := range a.Entries() {
				for _, eb := range b.Entries() {
					if geom.MinDist(ea.Rect, eb.Rect) <= eps {
						if err := walk(ea.Child, eb.Child); err != nil {
							return err
						}
					}
				}
			}
		case !a.Leaf():
			for _, ea := range a.Entries() {
				if geom.MinDist(ea.Rect, nodeBounds(b)) <= eps {
					if err := walk(ea.Child, b); err != nil {
						return err
					}
				}
			}
		case !b.Leaf():
			for _, eb := range b.Entries() {
				if geom.MinDist(nodeBounds(a), eb.Rect) <= eps {
					if err := walk(a, eb.Child); err != nil {
						return err
					}
				}
			}
		default:
			for _, ea := range a.Entries() {
				ia := ea.Data.(*leafItem)
				ra := ia.approx.EstimateMBR(alpha)
				for _, eb := range b.Entries() {
					ib := eb.Data.(*leafItem)
					if selfJoin && ia.id >= ib.id {
						continue // each unordered pair once; no self-pairs
					}
					if geom.MinDist(ra, ib.approx.EstimateMBR(alpha)) > eps {
						continue
					}
					oa, err := probe(left, leftObjs, ia)
					if err != nil {
						return err
					}
					ob, err := probe(right, rightObjs, ib)
					if err != nil {
						return err
					}
					st.DistanceEvals++
					if d := fuzzy.AlphaDist(oa, ob, alpha); d <= eps {
						out = append(out, JoinPair{LeftID: ia.id, RightID: ib.id, Dist: d})
					}
				}
			}
		}
		return nil
	}
	if sl.tree.Len() > 0 && sr.tree.Len() > 0 {
		if err := walk(sl.tree.Root(), sr.tree.Root()); err != nil {
			return nil, st, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		if out[i].LeftID != out[j].LeftID {
			return out[i].LeftID < out[j].LeftID
		}
		return out[i].RightID < out[j].RightID
	})
	st.Duration = time.Since(started)
	return out, st, nil
}

func nodeBounds(n *rtree.Node) geom.Rect {
	var r geom.Rect
	for _, e := range n.Entries() {
		r.ExpandRect(e.Rect)
	}
	return r
}

// joinSnapshots loads one consistent snapshot per side; a self-join shares
// a single snapshot so both sides see the same population.
func joinSnapshots(left, right *Index) (*snapshot, *snapshot) {
	if left == nil || right == nil {
		return nil, nil
	}
	sl := left.read()
	if left == right {
		return sl, sl
	}
	return sl, right.read()
}

func validateJoin(left, right *Index, sl, sr *snapshot, alphas ...float64) error {
	if left == nil || right == nil {
		return fmt.Errorf("query: nil index in join")
	}
	if sl.dims != 0 && sr.dims != 0 && sl.dims != sr.dims {
		return fmt.Errorf("query: join dims %d vs %d", sl.dims, sr.dims)
	}
	for _, a := range alphas {
		if !(a > 0 && a <= 1) {
			return fmt.Errorf("query: alpha must be in (0, 1], got %v", a)
		}
	}
	return nil
}

// pair-queue element kinds for KClosestPairs: a pair of entries, each
// either an interior node or a leaf item, or a fully evaluated object pair.
type pairSide struct {
	node *rtree.Node // non-nil for interior sides
	item *leafItem   // non-nil for leaf sides
	rect geom.Rect
}

type pairItem struct {
	key   float64
	exact bool
	a, b  pairSide
	dist  float64 // for exact pairs
	seq   uint64  // FIFO tiebreak for determinism
}

type pairQueue []pairItem

func (p pairQueue) Len() int { return len(p) }
func (p pairQueue) Less(i, j int) bool {
	if p[i].key != p[j].key {
		return p[i].key < p[j].key
	}
	// Resolve bounds before emitting exact pairs at equal keys.
	if p[i].exact != p[j].exact {
		return !p[i].exact
	}
	return p[i].seq < p[j].seq
}
func (p pairQueue) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p *pairQueue) Push(x any)   { *p = append(*p, x.(pairItem)) }
func (p *pairQueue) Pop() any     { old := *p; it := old[len(old)-1]; *p = old[:len(old)-1]; return it }

// KClosestPairs returns the k pairs (a ∈ left, b ∈ right) with the smallest
// α-distances, ordered ascending — the fuzzy-object version of the k
// closest pair query. Fewer than k pairs are returned when the data admits
// fewer (including self-joins on small sets).
func KClosestPairs(left, right *Index, k int, alpha float64) ([]JoinPair, Stats, error) {
	started := time.Now()
	var st Stats
	selfJoin := left == right
	sl, sr := joinSnapshots(left, right)
	if err := validateJoin(left, right, sl, sr, alpha); err != nil {
		return nil, st, err
	}
	if k < 1 {
		return nil, st, fmt.Errorf("query: k must be >= 1, got %d", k)
	}
	if sl.tree.Len() == 0 || sr.tree.Len() == 0 {
		return nil, st, nil
	}

	leftObjs := make(map[uint64]*fuzzy.Object)
	rightObjs := leftObjs
	if !selfJoin {
		rightObjs = make(map[uint64]*fuzzy.Object)
	}
	probe := func(ix *Index, cache map[uint64]*fuzzy.Object, it *leafItem) (*fuzzy.Object, error) {
		if o, ok := cache[it.id]; ok {
			return o, nil
		}
		o, err := ix.getObject(it.id, &st)
		if err != nil {
			return nil, err
		}
		cache[it.id] = o
		return o, nil
	}

	var seq uint64
	pq := &pairQueue{}
	push := func(it pairItem) {
		it.seq = seq
		seq++
		heap.Push(pq, it)
	}
	sideFor := func(n *rtree.Node) pairSide { return pairSide{node: n, rect: nodeBounds(n)} }
	push(pairItem{
		key: geom.MinDist(sl.tree.Bounds(), sr.tree.Bounds()),
		a:   sideFor(sl.tree.Root()), b: sideFor(sr.tree.Root()),
	})

	// expand enumerates an entry's children as pair sides at threshold α.
	children := func(n *rtree.Node) []pairSide {
		st.NodeAccesses++
		out := make([]pairSide, 0, len(n.Entries()))
		for _, e := range n.Entries() {
			if n.Leaf() {
				it := e.Data.(*leafItem)
				out = append(out, pairSide{item: it, rect: it.approx.EstimateMBR(alpha)})
			} else {
				out = append(out, pairSide{node: e.Child, rect: e.Rect})
			}
		}
		return out
	}

	var results []JoinPair
	for pq.Len() > 0 && len(results) < k {
		e := heap.Pop(pq).(pairItem)
		switch {
		case e.exact:
			results = append(results, JoinPair{LeftID: e.a.item.id, RightID: e.b.item.id, Dist: e.dist})

		case e.a.node == nil && e.b.node == nil:
			// Leaf-leaf: evaluate the exact α-distance.
			ia, ib := e.a.item, e.b.item
			if selfJoin && ia.id >= ib.id {
				continue
			}
			oa, err := probe(left, leftObjs, ia)
			if err != nil {
				return nil, st, err
			}
			ob, err := probe(right, rightObjs, ib)
			if err != nil {
				return nil, st, err
			}
			st.DistanceEvals++
			d := fuzzy.AlphaDist(oa, ob, alpha)
			push(pairItem{key: d, exact: true, a: e.a, b: e.b, dist: d})

		default:
			// Expand the interior side (the larger one when both are).
			expandA := e.a.node != nil
			if e.a.node != nil && e.b.node != nil && e.b.rect.Area() > e.a.rect.Area() {
				expandA = false
			}
			if expandA {
				for _, child := range children(e.a.node) {
					push(pairItem{key: geom.MinDist(child.rect, e.b.rect), a: child, b: e.b})
				}
			} else {
				for _, child := range children(e.b.node) {
					push(pairItem{key: geom.MinDist(e.a.rect, child.rect), a: e.a, b: child})
				}
			}
		}
	}
	st.Duration = time.Since(started)
	return results, st, nil
}
