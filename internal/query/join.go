package query

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/geom"
	"fuzzyknn/internal/rtree"
)

// The paper closes by naming spatial join queries among the advanced
// queries its framework opens up (§8); its own distance evaluation is the
// closest-pair primitive of Corral et al. (cited as [9]). This file
// implements both for fuzzy objects:
//
//   - DistanceJoin: all pairs (a, b) with d_α(a, b) ≤ eps — the fuzzy
//     analogue of an ε-distance join, via synchronized R-tree traversal
//     with the §3.2 conservative MBR approximations as pruning bounds.
//   - KClosestPairs: the k pairs with smallest d_α — an incremental
//     best-first search over entry pairs.
//
// Both support self-joins (left == right), in which case each unordered
// pair is reported once with LeftID < RightID.
//
// Sharded indexes join by fan-out: every (left shard, right shard) tree
// pair runs the single-tree algorithm concurrently and the per-pair
// results are merged. Shard partitions are disjoint, so the union over
// tree pairs is exact; a self-join over n shards decomposes into n
// self-pairs plus n(n−1)/2 cross pairs, each unordered pair appearing in
// exactly one of them.

// JoinPair is one result pair of a join query.
type JoinPair struct {
	LeftID, RightID uint64
	Dist            float64
}

// sortPairs orders ps by (Dist, LeftID, RightID) in place — the canonical
// join result order.
func sortPairs(ps []JoinPair) {
	slices.SortFunc(ps, func(a, b JoinPair) int {
		switch {
		case a.Dist < b.Dist:
			return -1
		case a.Dist > b.Dist:
			return 1
		case a.LeftID < b.LeftID:
			return -1
		case a.LeftID > b.LeftID:
			return 1
		case a.RightID < b.RightID:
			return -1
		case a.RightID > b.RightID:
			return 1
		}
		return 0
	})
}

// treePair is one unit of join fan-out: a pair of single-tree indexes,
// each pinned to the snapshot read once at query start — so every pair a
// shard participates in sees the same population even under concurrent
// mutation. self marks a same-tree pair (dedup inside the traversal);
// normalize marks a cross-shard pair of a self-join, whose pairs must be
// ordered LeftID < RightID.
type treePair struct {
	left, right     *Index
	sl, sr          *snapshot
	self, normalize bool
}

// joinPairs decomposes a (possibly sharded) join into single-tree pairs
// over per-shard snapshots pinned exactly once.
func joinPairs(ls, rs []*Index, selfJoin bool) []treePair {
	lsnaps := make([]*snapshot, len(ls))
	for i, ix := range ls {
		lsnaps[i] = ix.read()
	}
	var tasks []treePair
	if selfJoin {
		for i := range ls {
			tasks = append(tasks, treePair{left: ls[i], right: ls[i], sl: lsnaps[i], sr: lsnaps[i], self: true})
			for j := i + 1; j < len(ls); j++ {
				tasks = append(tasks, treePair{left: ls[i], right: ls[j], sl: lsnaps[i], sr: lsnaps[j], normalize: true})
			}
		}
		return tasks
	}
	rsnaps := make([]*snapshot, len(rs))
	for j, ix := range rs {
		rsnaps[j] = ix.read()
	}
	for i := range ls {
		for j := range rs {
			tasks = append(tasks, treePair{left: ls[i], right: rs[j], sl: lsnaps[i], sr: rsnaps[j]})
		}
	}
	return tasks
}

// runJoinPairs executes one join worker per tree pair concurrently and
// merges results and stats (first error wins). Worker outputs are
// normalized (self-join cross pairs swapped to LeftID < RightID) but not
// yet sorted.
func runJoinPairs(tasks []treePair, worker func(treePair) ([]JoinPair, Stats, error)) ([]JoinPair, Stats, error) {
	outs := make([][]JoinPair, len(tasks))
	stats := make([]Stats, len(tasks))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, tk := range tasks {
		wg.Add(1)
		go func(i int, tk treePair) {
			defer wg.Done()
			outs[i], stats[i], errs[i] = worker(tk)
		}(i, tk)
	}
	wg.Wait()
	var st Stats
	var all []JoinPair
	for i := range tasks {
		if errs[i] != nil {
			return nil, st, errs[i]
		}
		addParallel(&st, stats[i])
		if tasks[i].normalize {
			for j := range outs[i] {
				if outs[i][j].LeftID > outs[i][j].RightID {
					outs[i][j].LeftID, outs[i][j].RightID = outs[i][j].RightID, outs[i][j].LeftID
				}
			}
		}
		all = append(all, outs[i]...)
	}
	return all, st, nil
}

// DistanceJoin returns every pair (a ∈ left, b ∈ right) with
// d_α(a, b) ≤ eps, ordered by (Dist, LeftID, RightID). Objects are probed
// at most once per side per tree pair; Stats.ObjectAccesses counts probes
// on both sides. Pass the same index twice for a self-join; each unordered
// pair is then reported once.
func DistanceJoin(left, right Searcher, alpha, eps float64) ([]JoinPair, Stats, error) {
	started := time.Now()
	var st Stats
	ls, rs, selfJoin, err := joinSides(left, right, alpha)
	if err != nil {
		return nil, st, err
	}
	if eps < 0 || math.IsNaN(eps) {
		return nil, st, fmt.Errorf("query: join epsilon must be non-negative, got %v", eps)
	}
	out, st, err := runJoinPairs(joinPairs(ls, rs, selfJoin), func(tk treePair) ([]JoinPair, Stats, error) {
		return distanceJoinTrees(tk, alpha, eps)
	})
	if err != nil {
		return nil, st, err
	}
	sortPairs(out)
	st.Duration = time.Since(started)
	return out, st, nil
}

// distanceJoinTrees is the single-tree-pair ε-join worker. It runs in its
// own pooled scratch: the α-distance evaluator is pinned to the current
// left object, so a run of candidate pairs sharing a left side reuses one
// prebuilt cut tree instead of rebuilding per pair.
func distanceJoinTrees(tk treePair, alpha, eps float64) ([]JoinPair, Stats, error) {
	var st Stats
	left, right := tk.left, tk.right
	sl, sr, selfPair := tk.sl, tk.sr, tk.self
	sc := getScratch()
	defer putScratch(sc)
	// The worker re-pins the evaluator only when the left object changes; a
	// stale pin from the scratch's previous execution could alias the first
	// left object here (stable store pointers) and carry the wrong α.
	sc.dist.Invalidate()

	leftObjs := make(map[uint64]*fuzzy.Object)
	rightObjs := leftObjs
	if left != right {
		rightObjs = make(map[uint64]*fuzzy.Object)
	}
	probe := func(ix *Index, cache map[uint64]*fuzzy.Object, it *leafItem) (*fuzzy.Object, error) {
		if o, ok := cache[it.id]; ok {
			return o, nil
		}
		o, err := ix.getObject(it.id, &st)
		if err != nil {
			return nil, err
		}
		cache[it.id] = o
		return o, nil
	}

	var out []JoinPair
	var walk func(a, b *rtree.Node) error
	walk = func(a, b *rtree.Node) error {
		a, b = resolveNode(a, &st), resolveNode(b, &st)
		st.NodeAccesses++
		switch {
		case !a.Leaf() && !b.Leaf():
			for _, ea := range a.Entries() {
				for _, eb := range b.Entries() {
					if geom.MinDist(ea.Rect, eb.Rect) <= eps {
						if err := walk(ea.Child, eb.Child); err != nil {
							return err
						}
					}
				}
			}
		case !a.Leaf():
			for _, ea := range a.Entries() {
				if geom.MinDist(ea.Rect, nodeBounds(b)) <= eps {
					if err := walk(ea.Child, b); err != nil {
						return err
					}
				}
			}
		case !b.Leaf():
			for _, eb := range b.Entries() {
				if geom.MinDist(nodeBounds(a), eb.Rect) <= eps {
					if err := walk(a, eb.Child); err != nil {
						return err
					}
				}
			}
		default:
			for _, ea := range a.Entries() {
				ia := ea.Data.(*leafItem)
				// ra stays live across the inner loop; rb (estB) is consumed
				// immediately — two distinct scratch slots.
				sc.est = ia.approx.EstimateMBRInto(alpha, sc.est)
				ra := sc.est
				for _, eb := range b.Entries() {
					ib := eb.Data.(*leafItem)
					if selfPair && ia.id >= ib.id {
						continue // each unordered pair once; no self-pairs
					}
					sc.estB = ib.approx.EstimateMBRInto(alpha, sc.estB)
					if geom.MinDist(ra, sc.estB) > eps {
						continue
					}
					oa, err := probe(left, leftObjs, ia)
					if err != nil {
						return err
					}
					ob, err := probe(right, rightObjs, ib)
					if err != nil {
						return err
					}
					st.DistanceEvals++
					if sc.dist.Query() != oa {
						sc.dist.Reset(oa, alpha)
					}
					if d := sc.dist.Dist(ob); d <= eps {
						out = append(out, JoinPair{LeftID: ia.id, RightID: ib.id, Dist: d})
					}
				}
			}
		}
		return nil
	}
	if sl.tree.Len() > 0 && sr.tree.Len() > 0 {
		if err := walk(sl.tree.Root(), sr.tree.Root()); err != nil {
			return nil, st, err
		}
	}
	if err := left.pagedErr(); err != nil {
		return nil, st, err
	}
	if err := right.pagedErr(); err != nil {
		return nil, st, err
	}
	return out, st, nil
}

func nodeBounds(n *rtree.Node) geom.Rect {
	var r geom.Rect
	for _, e := range n.Entries() {
		r.ExpandRect(e.Rect)
	}
	return r
}

// joinSides validates a join's arguments and decomposes both sides into
// their single-tree shards.
func joinSides(left, right Searcher, alphas ...float64) (ls, rs []*Index, selfJoin bool, err error) {
	if left == nil || right == nil {
		return nil, nil, false, fmt.Errorf("query: nil index in join")
	}
	ls, err = shardTrees(left)
	if err != nil {
		return nil, nil, false, err
	}
	rs, err = shardTrees(right)
	if err != nil {
		return nil, nil, false, err
	}
	if ld, rd := left.Dims(), right.Dims(); ld != 0 && rd != 0 && ld != rd {
		return nil, nil, false, fmt.Errorf("query: join dims %d vs %d", ld, rd)
	}
	for _, a := range alphas {
		if !(a > 0 && a <= 1) {
			return nil, nil, false, fmt.Errorf("query: alpha must be in (0, 1], got %v", a)
		}
	}
	return ls, rs, left == right, nil
}

// shardTrees returns the single-tree indexes behind a Searcher.
func shardTrees(s Searcher) ([]*Index, error) {
	switch v := s.(type) {
	case *Index:
		return []*Index{v}, nil
	case *PagedIndex:
		return []*Index{v.Index}, nil
	case *ShardedIndex:
		return v.shards, nil
	}
	return nil, fmt.Errorf("query: join over unsupported index type %T", s)
}

// pair-queue element kinds for KClosestPairs: a pair of entries, each
// either an interior node or a leaf item, or a fully evaluated object pair.
type pairSide struct {
	node *rtree.Node // non-nil for interior sides
	item *leafItem   // non-nil for leaf sides
	rect geom.Rect
}

type pairItem struct {
	key   float64
	exact bool
	a, b  pairSide
	dist  float64 // for exact pairs
	seq   uint64  // FIFO tiebreak for unresolved entries
}

// lessThan orders the pair queue: ascending key; bounds resolve before
// exact pairs at equal keys; exact pairs at equal distance emit in
// (LeftID, RightID) order so the k-th slot is deterministic under ties;
// unresolved entries keep FIFO order (their expansion order cannot change
// the result set).
func (a pairItem) lessThan(b pairItem) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.exact != b.exact {
		return !a.exact
	}
	if a.exact {
		if l, r := a.a.item.id, b.a.item.id; l != r {
			return l < r
		}
		return a.b.item.id < b.b.item.id
	}
	return a.seq < b.seq
}

// pairQueue is the typed binary heap over pairItem; see typedHeap for why
// it is not container/heap.
type pairQueue struct{ typedHeap[pairItem] }

// KClosestPairs returns the k pairs (a ∈ left, b ∈ right) with the smallest
// α-distances, ordered by (Dist, LeftID, RightID) — the fuzzy-object
// version of the k closest pair query. Fewer than k pairs are returned
// when the data admits fewer (including self-joins on small sets).
func KClosestPairs(left, right Searcher, k int, alpha float64) ([]JoinPair, Stats, error) {
	started := time.Now()
	var st Stats
	ls, rs, selfJoin, err := joinSides(left, right, alpha)
	if err != nil {
		return nil, st, err
	}
	if k < 1 {
		return nil, st, fmt.Errorf("query: k must be >= 1, got %d", k)
	}
	out, st, err := runJoinPairs(joinPairs(ls, rs, selfJoin), func(tk treePair) ([]JoinPair, Stats, error) {
		return kClosestPairsTrees(tk, k, alpha)
	})
	if err != nil {
		return nil, st, err
	}
	// Each tree pair contributed its local k best; the global k best live
	// in that union.
	sortPairs(out)
	if len(out) > k {
		out = out[:k]
	}
	st.Duration = time.Since(started)
	return out, st, nil
}

// kClosestPairsTrees is the single-tree-pair k-closest-pairs worker. Like
// the ε-join it runs in a pooled scratch; the distance evaluator is pinned
// to the current left object (pairs arrive in best-first order, so runs
// sharing a left side still reuse one prebuilt cut tree).
func kClosestPairsTrees(tk treePair, k int, alpha float64) ([]JoinPair, Stats, error) {
	var st Stats
	left, right := tk.left, tk.right
	sl, sr, selfPair := tk.sl, tk.sr, tk.self
	if sl.tree.Len() == 0 || sr.tree.Len() == 0 {
		return nil, st, nil
	}
	sc := getScratch()
	defer putScratch(sc)
	sc.dist.Invalidate() // see distanceJoinTrees: stale pins must not survive pooling

	leftObjs := make(map[uint64]*fuzzy.Object)
	rightObjs := leftObjs
	if left != right {
		rightObjs = make(map[uint64]*fuzzy.Object)
	}
	probe := func(ix *Index, cache map[uint64]*fuzzy.Object, it *leafItem) (*fuzzy.Object, error) {
		if o, ok := cache[it.id]; ok {
			return o, nil
		}
		o, err := ix.getObject(it.id, &st)
		if err != nil {
			return nil, err
		}
		cache[it.id] = o
		return o, nil
	}

	var seq uint64
	pq := &pairQueue{}
	push := func(it pairItem) {
		it.seq = seq
		seq++
		pq.Push(it)
	}
	sideFor := func(n *rtree.Node) pairSide { return pairSide{node: n, rect: nodeBounds(n)} }
	push(pairItem{
		key: geom.MinDist(sl.tree.Bounds(), sr.tree.Bounds()),
		a:   sideFor(sl.tree.Root()), b: sideFor(sr.tree.Root()),
	})

	// expand enumerates an entry's children as pair sides at threshold α.
	children := func(n *rtree.Node) []pairSide {
		n = resolveNode(n, &st)
		st.NodeAccesses++
		out := make([]pairSide, 0, len(n.Entries()))
		for _, e := range n.Entries() {
			if n.Leaf() {
				it := e.Data.(*leafItem)
				out = append(out, pairSide{item: it, rect: it.approx.EstimateMBR(alpha)})
			} else {
				out = append(out, pairSide{node: e.Child, rect: e.Rect})
			}
		}
		return out
	}

	var results []JoinPair
	for pq.Len() > 0 && len(results) < k {
		e := pq.Pop()
		switch {
		case e.exact:
			results = append(results, JoinPair{LeftID: e.a.item.id, RightID: e.b.item.id, Dist: e.dist})

		case e.a.node == nil && e.b.node == nil:
			// Leaf-leaf: evaluate the exact α-distance.
			ia, ib := e.a.item, e.b.item
			if selfPair && ia.id >= ib.id {
				continue
			}
			oa, err := probe(left, leftObjs, ia)
			if err != nil {
				return nil, st, err
			}
			ob, err := probe(right, rightObjs, ib)
			if err != nil {
				return nil, st, err
			}
			st.DistanceEvals++
			if sc.dist.Query() != oa {
				sc.dist.Reset(oa, alpha)
			}
			d := sc.dist.Dist(ob)
			// Cross-shard pairs of a self-join are stored with the smaller
			// id on the left BEFORE entering the heap: the local top-k cut
			// truncates equal-distance pairs in heap order, which must be
			// the canonical (LeftID, RightID) order or a tie at the k-th
			// slot could keep a different pair than the single tree would.
			if tk.normalize && ia.id > ib.id {
				e.a, e.b = e.b, e.a
			}
			push(pairItem{key: d, exact: true, a: e.a, b: e.b, dist: d})

		default:
			// Expand the interior side (the larger one when both are).
			expandA := e.a.node != nil
			if e.a.node != nil && e.b.node != nil && e.b.rect.Area() > e.a.rect.Area() {
				expandA = false
			}
			if expandA {
				for _, child := range children(e.a.node) {
					push(pairItem{key: geom.MinDist(child.rect, e.b.rect), a: child, b: e.b})
				}
			} else {
				for _, child := range children(e.b.node) {
					push(pairItem{key: geom.MinDist(e.a.rect, child.rect), a: e.a, b: child})
				}
			}
		}
	}
	if err := left.pagedErr(); err != nil {
		return nil, st, err
	}
	if err := right.pagedErr(); err != nil {
		return nil, st, err
	}
	return results, st, nil
}
