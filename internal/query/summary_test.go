package query

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"fuzzyknn/internal/store"
)

func TestSummaryRoundTripStream(t *testing.T) {
	rng := rand.New(rand.NewPCG(501, 1))
	objs := makeObjects(rng, 40, 12, 10, 8)
	ix := buildIndex(t, objs, Options{})
	sums, err := ix.Summaries()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 40 {
		t.Fatalf("summaries = %d", len(sums))
	}
	var buf bytes.Buffer
	if err := WriteSummaries(&buf, 2, sums); err != nil {
		t.Fatal(err)
	}
	dims, got, err := ReadSummaries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dims != 2 || len(got) != len(sums) {
		t.Fatalf("dims=%d count=%d", dims, len(got))
	}
	for i := range got {
		if got[i].ID != sums[i].ID {
			t.Fatalf("summary %d id %d, want %d", i, got[i].ID, sums[i].ID)
		}
		if !got[i].Approx.Support.Equal(sums[i].Approx.Support) ||
			!got[i].Approx.Kernel.Equal(sums[i].Approx.Kernel) {
			t.Fatalf("summary %d rects changed", i)
		}
		for d := 0; d < 2; d++ {
			if got[i].Approx.HiLine[d] != sums[i].Approx.HiLine[d] ||
				got[i].Approx.LoLine[d] != sums[i].Approx.LoLine[d] {
				t.Fatalf("summary %d lines changed", i)
			}
		}
		if !got[i].Rep.Equal(sums[i].Rep) {
			t.Fatalf("summary %d rep changed", i)
		}
	}
}

func TestBuildFromSummaryFileMatchesFullBuild(t *testing.T) {
	rng := rand.New(rand.NewPCG(503, 2))
	objs := makeObjects(rng, 60, 12, 10, 8)
	ms, err := store.NewMemStore(objs)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(ms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.fzx")
	if err := full.SaveSummaries(path); err != nil {
		t.Fatal(err)
	}

	counting := store.NewCounting(ms)
	fast, err := BuildFromSummaryFile(counting, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if counting.Count() != 0 {
		t.Fatalf("summary-based build read %d objects from the store", counting.Count())
	}

	q := makeQuery(rng, 12, 10, 8)
	for _, algo := range []AKNNAlgorithm{Basic, LB, LBLPUB} {
		a, _, err := full.AKNN(q, 8, 0.5, algo)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := fast.AKNN(q, 8, 0.5, algo)
		if err != nil {
			t.Fatal(err)
		}
		checkSameDistances(t, a, b, "summary-rebuilt "+algo.String())
	}
	r1, _, err := full.RKNN(q, 4, 0.3, 0.7, RSSICR)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := fast.RKNN(q, 4, 0.3, 0.7, RSSICR)
	if err != nil {
		t.Fatal(err)
	}
	checkSameRanged(t, r2, r1, "summary-rebuilt RKNN")
}

func TestSummaryFileCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewPCG(505, 3))
	objs := makeObjects(rng, 10, 10, 10, 4)
	ix := buildIndex(t, objs, Options{})
	dir := t.TempDir()
	path := filepath.Join(dir, "index.fzx")
	if err := ix.SaveSummaries(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"flip body byte": func(b []byte) []byte { c := append([]byte(nil), b...); c[40] ^= 0xFF; return c },
		"truncate":       func(b []byte) []byte { return b[:len(b)/2] },
		"bad magic":      func(b []byte) []byte { c := append([]byte(nil), b...); c[0] ^= 0xFF; return c },
		"bad tail":       func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-1] ^= 0xFF; return c },
		"empty":          func([]byte) []byte { return nil },
	}
	ms, _ := store.NewMemStore(objs)
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(dir, name+".fzx")
			if err := os.WriteFile(p, mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := BuildFromSummaryFile(ms, p, Options{}); !errors.Is(err, ErrSummaryCorrupt) {
				t.Fatalf("err = %v, want ErrSummaryCorrupt", err)
			}
		})
	}
}

func TestSummaryStoreMismatchDetected(t *testing.T) {
	rng := rand.New(rand.NewPCG(507, 4))
	objsA := makeObjects(rng, 10, 10, 10, 4)
	objsB := makeObjects(rng, 12, 10, 10, 4) // different count
	ixA := buildIndex(t, objsA, Options{})
	path := filepath.Join(t.TempDir(), "a.fzx")
	if err := ixA.SaveSummaries(path); err != nil {
		t.Fatal(err)
	}
	msB, _ := store.NewMemStore(objsB)
	if _, err := BuildFromSummaryFile(msB, path, Options{}); !errors.Is(err, ErrSummaryMismatch) {
		t.Fatalf("err = %v, want ErrSummaryMismatch", err)
	}
}

func TestSummaryEmptyIndex(t *testing.T) {
	ix := buildIndex(t, nil, Options{})
	path := filepath.Join(t.TempDir(), "empty.fzx")
	if err := ix.SaveSummaries(path); err != nil {
		t.Fatal(err)
	}
	ms, _ := store.NewMemStore(nil)
	fast, err := BuildFromSummaryFile(ms, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Len() != 0 {
		t.Fatalf("Len = %d", fast.Len())
	}
}
