package query

import (
	"math/rand/v2"
	"sync"
	"testing"

	"fuzzyknn/internal/fuzzy"
)

// TestConcurrentQueriesOnSharedIndex verifies the Index is safe for
// concurrent readers: many goroutines fire mixed AKNN/RKNN/range queries at
// one shared index and every answer must match the single-threaded result.
func TestConcurrentQueriesOnSharedIndex(t *testing.T) {
	rng := rand.New(rand.NewPCG(401, 1))
	objs := makeObjects(rng, 80, 12, 12, 8)
	ix := buildIndex(t, objs, Options{})
	queries := make([]*queryCase, 12)
	for i := range queries {
		queries[i] = &queryCase{
			q:     makeQuery(rng, 12, 12, 8),
			k:     1 + rng.IntN(8),
			alpha: 0.2 + 0.6*rng.Float64(),
		}
	}
	// Single-threaded reference answers.
	for _, qc := range queries {
		res, _, err := ix.AKNN(qc.q, qc.k, qc.alpha, LB)
		if err != nil {
			t.Fatal(err)
		}
		qc.wantAKNN = res
		ranged, _, err := ix.RKNN(qc.q, qc.k, 0.3, 0.7, RSSICR)
		if err != nil {
			t.Fatal(err)
		}
		qc.wantRKNN = ranged
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for round := 0; round < 8; round++ {
				qc := queries[(worker+round)%len(queries)]
				switch round % 3 {
				case 0:
					res, _, err := ix.AKNN(qc.q, qc.k, qc.alpha, LB)
					if err != nil {
						errCh <- err
						return
					}
					if len(res) != len(qc.wantAKNN) {
						errCh <- errMismatch("aknn count")
						return
					}
					for i := range res {
						if res[i].ID != qc.wantAKNN[i].ID || res[i].Dist != qc.wantAKNN[i].Dist {
							errCh <- errMismatch("aknn result")
							return
						}
					}
				case 1:
					ranged, _, err := ix.RKNN(qc.q, qc.k, 0.3, 0.7, RSSICR)
					if err != nil {
						errCh <- err
						return
					}
					if len(ranged) != len(qc.wantRKNN) {
						errCh <- errMismatch("rknn count")
						return
					}
					for i := range ranged {
						if ranged[i].ID != qc.wantRKNN[i].ID ||
							!ranged[i].Qualifying.Equal(qc.wantRKNN[i].Qualifying) {
							errCh <- errMismatch("rknn range")
							return
						}
					}
				default:
					if _, _, err := ix.RangeSearch(qc.q, qc.alpha, 2.0); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

type queryCase struct {
	q        *fuzzy.Object
	k        int
	alpha    float64
	wantAKNN []Result
	wantRKNN []RangedResult
}

type errMismatch string

func (e errMismatch) Error() string { return "concurrent result mismatch: " + string(e) }
