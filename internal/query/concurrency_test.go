package query

import (
	"math/rand/v2"
	"sync"
	"testing"

	"fuzzyknn/internal/fuzzy"
)

// TestConcurrentQueriesOnSharedIndex verifies the Index is safe for
// concurrent readers: many goroutines fire mixed AKNN/RKNN/range queries at
// one shared index and every answer must match the single-threaded result.
func TestConcurrentQueriesOnSharedIndex(t *testing.T) {
	rng := rand.New(rand.NewPCG(401, 1))
	objs := makeObjects(rng, 80, 12, 12, 8)
	ix := buildIndex(t, objs, Options{})
	queries := make([]*queryCase, 12)
	for i := range queries {
		queries[i] = &queryCase{
			q:     makeQuery(rng, 12, 12, 8),
			k:     1 + rng.IntN(8),
			alpha: 0.2 + 0.6*rng.Float64(),
		}
	}
	// Single-threaded reference answers.
	for _, qc := range queries {
		res, _, err := ix.AKNN(qc.q, qc.k, qc.alpha, LB)
		if err != nil {
			t.Fatal(err)
		}
		qc.wantAKNN = res
		ranged, _, err := ix.RKNN(qc.q, qc.k, 0.3, 0.7, RSSICR)
		if err != nil {
			t.Fatal(err)
		}
		qc.wantRKNN = ranged
		rg, _, err := ix.RangeSearch(qc.q, qc.alpha, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		qc.wantRange = rg
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for round := 0; round < 8; round++ {
				qc := queries[(worker+round)%len(queries)]
				switch round % 3 {
				case 0:
					res, _, err := ix.AKNN(qc.q, qc.k, qc.alpha, LB)
					if err != nil {
						errCh <- err
						return
					}
					if len(res) != len(qc.wantAKNN) {
						errCh <- errMismatch("aknn count")
						return
					}
					for i := range res {
						if res[i].ID != qc.wantAKNN[i].ID || res[i].Dist != qc.wantAKNN[i].Dist {
							errCh <- errMismatch("aknn result")
							return
						}
					}
				case 1:
					ranged, _, err := ix.RKNN(qc.q, qc.k, 0.3, 0.7, RSSICR)
					if err != nil {
						errCh <- err
						return
					}
					if len(ranged) != len(qc.wantRKNN) {
						errCh <- errMismatch("rknn count")
						return
					}
					for i := range ranged {
						if ranged[i].ID != qc.wantRKNN[i].ID ||
							!ranged[i].Qualifying.Equal(qc.wantRKNN[i].Qualifying) {
							errCh <- errMismatch("rknn range")
							return
						}
					}
				default:
					rg, _, err := ix.RangeSearch(qc.q, qc.alpha, 2.0)
					if err != nil {
						errCh <- err
						return
					}
					if len(rg) != len(qc.wantRange) {
						errCh <- errMismatch("range count")
						return
					}
					for i := range rg {
						if rg[i].ID != qc.wantRange[i].ID || rg[i].Dist != qc.wantRange[i].Dist {
							errCh <- errMismatch("range result")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

type queryCase struct {
	q         *fuzzy.Object
	k         int
	alpha     float64
	wantAKNN  []Result
	wantRKNN  []RangedResult
	wantRange []Result
}

// TestConcurrentLazyProbeVariants exercises the read path the basic test
// does not: LBLPUB (whose upper bound samples the query's α-cut via
// SampleCut) plus Refine, concurrently against one shared index. Both must
// be pure reads — any hidden memoization would trip -race here.
func TestConcurrentLazyProbeVariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(402, 1))
	objs := makeObjects(rng, 80, 12, 12, 8)
	ix := buildIndex(t, objs, Options{SampleSize: 8, SampleSeed: 9})
	queries := make([]*fuzzy.Object, 8)
	for i := range queries {
		queries[i] = makeQuery(rng, 12, 12, 8)
	}
	type refAnswer struct {
		lazy    []Result
		refined []Result
	}
	want := make([]refAnswer, len(queries))
	for i, q := range queries {
		lazy, _, err := ix.AKNN(q, 4, 0.5, LBLPUB)
		if err != nil {
			t.Fatal(err)
		}
		refined, _, err := ix.Refine(q, 0.5, lazy)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = refAnswer{lazy: lazy, refined: refined}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				i := (worker + round) % len(queries)
				lazy, _, err := ix.AKNN(queries[i], 4, 0.5, LBLPUB)
				if err != nil {
					errCh <- err
					return
				}
				refined, _, err := ix.Refine(queries[i], 0.5, lazy)
				if err != nil {
					errCh <- err
					return
				}
				if len(lazy) != len(want[i].lazy) || len(refined) != len(want[i].refined) {
					errCh <- errMismatch("result count")
					return
				}
				for j := range lazy {
					if lazy[j] != want[i].lazy[j] {
						errCh <- errMismatch("lazy result")
						return
					}
				}
				for j := range refined {
					if refined[j] != want[i].refined[j] {
						errCh <- errMismatch("refined result")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

type errMismatch string

func (e errMismatch) Error() string { return "concurrent result mismatch: " + string(e) }
