package query

import (
	"time"

	"fuzzyknn/internal/fuzzy"
)

// ExpectedDistKNN ranks objects by the classical integrated fuzzy-set
// distance E(A, Q) = ∫₀¹ d_α dα instead of a single-threshold α-distance —
// the alternative the paper discusses and rejects in §2.1 ("a fuzzy object
// with low probability region may never be regarded as the nearest neighbor
// even it is very close to the query object"). It is provided as a baseline
// so applications can compare the two semantics; there is no index
// acceleration (the expected distance needs the full profile of every
// object, so the scan probes everything).
func (ix *Index) ExpectedDistKNN(q *fuzzy.Object, k int) ([]Result, Stats, error) {
	started := time.Now()
	var st Stats
	s := ix.read()
	if err := ix.validateQuery(s, q, k, 1); err != nil {
		return nil, st, err
	}
	out, err := ix.expectedDistTopK(s, q, k, &st)
	if err != nil {
		return nil, st, err
	}
	st.Duration = time.Since(started)
	return out, st, nil
}

// ExpectedDistKNN is the package-level form of Index.ExpectedDistKNN, kept
// for callers holding a concrete *Index.
func ExpectedDistKNN(ix *Index, q *fuzzy.Object, k int) ([]Result, Stats, error) {
	return ix.ExpectedDistKNN(q, k)
}

// expectedDistTopK scans one snapshot's population and returns its local
// top k by (expected distance, id). Because the per-tree ranking is exact,
// a sharded coordinator can merge the shard-local top-k lists into the
// global answer without further probes.
func (ix *Index) expectedDistTopK(s *snapshot, q *fuzzy.Object, k int, st *Stats) ([]Result, error) {
	sc := getScratch()
	defer putScratch(sc)
	cands := sc.idDists[:0]
	for _, id := range s.leafIDs(st) {
		obj, err := ix.getObject(id, st)
		if err != nil {
			return nil, err
		}
		st.ProfilesBuilt++
		// The scratch's profile cache memoizes the staircase — and its
		// integral — per (object, query), so repeats of the same query
		// never recompute an integral they already paid for.
		e := sc.profiles.ExpectedDist(obj, q)
		cands = append(cands, idDist{id: id, d: e})
	}
	sortIDDists(cands)
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = Result{ID: c.id, Dist: c.d, Exact: true, Lower: c.d, Upper: c.d}
	}
	sc.idDists = cands[:0]
	if err := ix.pagedErr(); err != nil {
		return nil, err
	}
	return out, nil
}
