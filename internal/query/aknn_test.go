package query

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/geom"
	"fuzzyknn/internal/store"
)

// makeObjects builds n random fuzzy objects with quantized memberships in a
// small space so that supports overlap and distance ties (including zeros)
// actually occur.
func makeObjects(rng *rand.Rand, n, pts int, space float64, quantize int) []*fuzzy.Object {
	objs := make([]*fuzzy.Object, n)
	for i := range objs {
		cx, cy := rng.Float64()*space, rng.Float64()*space
		wps := make([]fuzzy.WeightedPoint, pts)
		for j := range wps {
			r := math.Sqrt(rng.Float64())
			th := rng.Float64() * 2 * math.Pi
			mu := rng.Float64()
			if mu == 0 {
				mu = 0.5
			}
			if quantize > 0 {
				mu = math.Ceil(mu*float64(quantize)) / float64(quantize)
			}
			wps[j] = fuzzy.WeightedPoint{
				P:  geom.Point{cx + r*math.Cos(th), cy + r*math.Sin(th)},
				Mu: mu,
			}
		}
		wps[0].Mu = 1
		objs[i] = fuzzy.MustNew(uint64(i+1), wps)
	}
	return objs
}

func makeQuery(rng *rand.Rand, pts int, space float64, quantize int) *fuzzy.Object {
	return makeObjects(rng, 1, pts, space, quantize)[0]
}

func buildIndex(t testing.TB, objs []*fuzzy.Object, opts Options) *Index {
	t.Helper()
	ms, err := store.NewMemStore(objs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(ms, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// checkSameDistances verifies two result lists describe the same kNN set up
// to distance ties: distances (sorted) match pairwise, and wherever ids
// differ the distances must be equal.
func checkSameDistances(t *testing.T, got, want []Result, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	g := append([]Result(nil), got...)
	w := append([]Result(nil), want...)
	sort.Slice(g, func(i, j int) bool { return g[i].Dist < g[j].Dist })
	sort.Slice(w, func(i, j int) bool { return w[i].Dist < w[j].Dist })
	for i := range g {
		if math.Abs(g[i].Dist-w[i].Dist) > 1e-9 {
			t.Fatalf("%s: dist[%d] = %v, want %v", label, i, g[i].Dist, w[i].Dist)
		}
	}
}

func TestAKNNAllVariantsMatchLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	algos := []AKNNAlgorithm{Basic, LB, LBLP, LBLPUB}
	for trial := 0; trial < 12; trial++ {
		n := 20 + rng.IntN(60)
		quant := []int{0, 8, 16}[trial%3]
		objs := makeObjects(rng, n, 10+rng.IntN(40), 12, quant)
		ix := buildIndex(t, objs, Options{MinEntries: 2, MaxEntries: 6})
		q := makeQuery(rng, 30, 12, quant)
		for _, k := range []int{1, 3, 10, n + 5} {
			for _, alpha := range []float64{0.25, 0.6, 1.0} {
				want, _, err := ix.LinearScanAKNN(q, k, alpha)
				if err != nil {
					t.Fatal(err)
				}
				for _, algo := range algos {
					got, _, err := ix.AKNN(q, k, alpha, algo)
					if err != nil {
						t.Fatalf("%v: %v", algo, err)
					}
					// Lazy variants may return bound-only results; refine
					// them to exact distances before comparing.
					refined, _, err := ix.Refine(q, alpha, got)
					if err != nil {
						t.Fatal(err)
					}
					checkSameDistances(t, refined, want, algo.String())
				}
			}
		}
	}
}

func TestAKNNResultsSortedAndExactForBasicLB(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 2))
	objs := makeObjects(rng, 50, 20, 10, 8)
	ix := buildIndex(t, objs, Options{})
	q := makeQuery(rng, 20, 10, 8)
	for _, algo := range []AKNNAlgorithm{Basic, LB} {
		res, _, err := ix.AKNN(q, 10, 0.5, algo)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if !r.Exact {
				t.Fatalf("%v: result %d not exact", algo, i)
			}
			if i > 0 && res[i-1].Dist > r.Dist {
				t.Fatalf("%v: results not sorted by distance", algo)
			}
		}
	}
}

func TestAKNNLazyBoundsSandwichTruth(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 3))
	objs := makeObjects(rng, 60, 25, 10, 0)
	ix := buildIndex(t, objs, Options{})
	q := makeQuery(rng, 25, 10, 0)
	for _, algo := range []AKNNAlgorithm{LBLP, LBLPUB} {
		res, _, err := ix.AKNN(q, 15, 0.5, algo)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Exact {
				continue
			}
			obj, err := ix.Store().Get(r.ID)
			if err != nil {
				t.Fatal(err)
			}
			d := fuzzy.AlphaDist(obj, q, 0.5)
			if d < r.Lower-1e-9 || d > r.Upper+1e-9 {
				t.Fatalf("%v: true dist %v outside [%v, %v]", algo, d, r.Lower, r.Upper)
			}
		}
	}
}

func TestAKNNOptimizationsReduceAccesses(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 4))
	objs := makeObjects(rng, 300, 20, 25, 0)
	ix := buildIndex(t, objs, Options{})
	var basicAcc, lbAcc, lbubAcc int
	for trial := 0; trial < 20; trial++ {
		q := makeQuery(rng, 20, 25, 0)
		_, st, err := ix.AKNN(q, 10, 0.7, Basic)
		if err != nil {
			t.Fatal(err)
		}
		basicAcc += st.ObjectAccesses
		_, st, _ = ix.AKNN(q, 10, 0.7, LB)
		lbAcc += st.ObjectAccesses
		_, st, _ = ix.AKNN(q, 10, 0.7, LBLPUB)
		lbubAcc += st.ObjectAccesses
	}
	if lbAcc > basicAcc {
		t.Errorf("LB accesses (%d) exceed Basic (%d)", lbAcc, basicAcc)
	}
	if lbubAcc > lbAcc {
		t.Errorf("LB-LP-UB accesses (%d) exceed LB (%d)", lbubAcc, lbAcc)
	}
	if basicAcc == 0 {
		t.Error("Basic made no accesses at all")
	}
}

func TestAKNNStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 5))
	objs := makeObjects(rng, 40, 15, 10, 8)
	ms, _ := store.NewMemStore(objs)
	counted := store.NewCounting(ms)
	ix, err := Build(counted, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counted.Reset() // discard index-build reads
	q := makeQuery(rng, 15, 10, 8)
	_, st, err := ix.AKNN(q, 5, 0.5, LB)
	if err != nil {
		t.Fatal(err)
	}
	if int64(st.ObjectAccesses) != counted.Count() {
		t.Fatalf("Stats.ObjectAccesses = %d, store counted %d", st.ObjectAccesses, counted.Count())
	}
	if st.ObjectAccesses > 40 {
		t.Fatalf("more accesses than objects: %d", st.ObjectAccesses)
	}
	if st.NodeAccesses == 0 {
		t.Fatal("no node accesses recorded")
	}
	if st.Duration <= 0 {
		t.Fatal("duration not recorded")
	}
	// Linear scan touches everything exactly once.
	_, st, _ = ix.LinearScanAKNN(q, 5, 0.5)
	if st.ObjectAccesses != 40 || st.DistanceEvals != 40 {
		t.Fatalf("linear scan stats = %+v", st)
	}
}

func TestAKNNEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 6))
	objs := makeObjects(rng, 5, 10, 10, 4)
	ix := buildIndex(t, objs, Options{})
	q := makeQuery(rng, 10, 10, 4)

	// k larger than the dataset returns everything.
	res, _, err := ix.AKNN(q, 50, 0.5, LB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results, want 5", len(res))
	}

	// Validation failures.
	if _, _, err := ix.AKNN(nil, 5, 0.5, LB); err == nil {
		t.Error("nil query accepted")
	}
	if _, _, err := ix.AKNN(q, 0, 0.5, LB); err == nil {
		t.Error("k=0 accepted")
	}
	for _, alpha := range []float64{0, -0.5, 1.5} {
		if _, _, err := ix.AKNN(q, 5, alpha, LB); err == nil {
			t.Errorf("alpha=%v accepted", alpha)
		}
	}

	// Empty index.
	empty := buildIndex(t, nil, Options{})
	res, _, err = empty.AKNN(q, 3, 0.5, LBLPUB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty index returned %d results", len(res))
	}
}

func TestAKNNIncrementalIndexMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 7))
	objs := makeObjects(rng, 80, 15, 12, 8)
	bulk := buildIndex(t, objs, Options{})
	incr := buildIndex(t, objs, Options{Incremental: true, MinEntries: 2, MaxEntries: 6})
	q := makeQuery(rng, 15, 12, 8)
	a, _, err := bulk.AKNN(q, 8, 0.6, LB)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := incr.AKNN(q, 8, 0.6, LB)
	if err != nil {
		t.Fatal(err)
	}
	checkSameDistances(t, a, b, "incremental-vs-bulk")
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 8))
	objs := makeObjects(rng, 100, 15, 15, 8)
	ix := buildIndex(t, objs, Options{})
	q := makeQuery(rng, 15, 15, 8)
	for _, radius := range []float64{0.5, 2, 5, 100} {
		for _, useLB := range []bool{false, true} {
			var st Stats
			sc := getScratch()
			got, dists, err := ix.rangeSearch(sc, ix.read(), q, 0.5, radius, useLB, &st)
			if err != nil {
				t.Fatal(err)
			}
			want := map[uint64]float64{}
			for _, o := range objs {
				if d := fuzzy.AlphaDist(o, q, 0.5); d <= radius {
					want[o.ID()] = d
				}
			}
			if len(got) != len(want) {
				t.Fatalf("radius %v useLB=%v: %d objects, want %d", radius, useLB, len(got), len(want))
			}
			for id, d := range dists {
				if wd, ok := want[id]; !ok || math.Abs(d-wd) > 1e-9 {
					t.Fatalf("radius %v: object %d dist %v, want %v", radius, id, d, wd)
				}
			}
		}
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if Basic.String() != "Basic AKNN" || LB.String() != "LB" ||
		LBLP.String() != "LB-LP" || LBLPUB.String() != "LB-LP-UB" {
		t.Error("AKNN algorithm names wrong")
	}
	if Naive.String() != "Naive RKNN" || BasicRKNN.String() != "Basic RKNN" ||
		RSS.String() != "RSS" || RSSICR.String() != "RSS-ICR" {
		t.Error("RKNN algorithm names wrong")
	}
	if AKNNAlgorithm(99).String() == "" || RKNNAlgorithm(99).String() == "" {
		t.Error("unknown algorithms should still print")
	}
}
