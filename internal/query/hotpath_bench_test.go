package query

import (
	"math/rand/v2"
	"testing"

	"fuzzyknn/internal/fuzzy"
)

// Hot-path micro-benchmarks: one per query family, on a fixed mid-size
// workload. These are the benchmarks the CI bench-gate job runs on the PR
// head and on the merge-base (-count=10 each) and compares with benchstat;
// a statistically significant ns/op or allocs/op regression above the
// threshold fails the gate. Keep them fast (the gate runs them 20 times)
// and deterministic: fixed seed, fixed workload, b.ReportAllocs so the
// allocation trajectory is part of every run's output.

const (
	hotN     = 600
	hotPts   = 64
	hotSpace = 12.0
	hotK     = 10
	hotAlpha = 0.5
)

type hotEnv struct {
	ix      *Index
	queries []*fuzzy.Object
}

func newHotEnv(b *testing.B) *hotEnv {
	b.Helper()
	rng := rand.New(rand.NewPCG(7, 11))
	objs := makeObjects(rng, hotN, hotPts, hotSpace, 8)
	ix := buildIndex(b, objs, Options{})
	env := &hotEnv{ix: ix}
	for i := 0; i < 4; i++ {
		env.queries = append(env.queries, makeQuery(rng, hotPts, hotSpace, 8))
	}
	return env
}

func benchmarkHotAKNN(b *testing.B, algo AKNNAlgorithm) {
	env := newHotEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := env.queries[i%len(env.queries)]
		if _, _, err := env.ix.AKNN(q, hotK, hotAlpha, algo); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPathAKNNBasic(b *testing.B)  { benchmarkHotAKNN(b, Basic) }
func BenchmarkHotPathAKNNLB(b *testing.B)     { benchmarkHotAKNN(b, LB) }
func BenchmarkHotPathAKNNLBLP(b *testing.B)   { benchmarkHotAKNN(b, LBLP) }
func BenchmarkHotPathAKNNLBLPUB(b *testing.B) { benchmarkHotAKNN(b, LBLPUB) }

func BenchmarkHotPathRangeSearch(b *testing.B) {
	env := newHotEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := env.queries[i%len(env.queries)]
		if _, _, err := env.ix.RangeSearch(q, hotAlpha, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkHotRKNN(b *testing.B, algo RKNNAlgorithm) {
	env := newHotEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := env.queries[i%len(env.queries)]
		if _, _, err := env.ix.RKNN(q, hotK, 0.4, 0.6, algo); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPathRKNNRSS(b *testing.B)    { benchmarkHotRKNN(b, RSS) }
func BenchmarkHotPathRKNNRSSICR(b *testing.B) { benchmarkHotRKNN(b, RSSICR) }

func BenchmarkHotPathReverseKNN(b *testing.B) {
	env := newHotEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := env.queries[i%len(env.queries)]
		if _, _, err := env.ix.ReverseKNN(q, 4, hotAlpha); err != nil {
			b.Fatal(err)
		}
	}
}
