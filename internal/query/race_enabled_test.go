//go:build race

package query

// raceEnabled reports whether the race detector is active. The
// zero-allocation pins skip under -race: the race runtime intentionally
// randomizes sync.Pool reuse (dropping puts to surface races), so pooled
// scratch cannot stay warm and the pins would measure the detector, not
// the code.
const raceEnabled = true
