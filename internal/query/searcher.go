package query

import (
	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/pager"
	"fuzzyknn/internal/store"
)

// Searcher is the query contract the engine, server and public API program
// against. Two implementations exist:
//
//   - *Index: one R-tree over one object store, the paper's single-tree
//     design with snapshot-isolated mutations.
//   - *ShardedIndex: N hash-partitioned *Index shards behind a coordinator
//     that fans every query out in parallel and merges exactly.
//
// All methods must be safe for concurrent use. Query methods run against a
// consistent snapshot per shard (see Index for the isolation contract);
// mutation methods serialize per shard.
type Searcher interface {
	// AKNN answers the ad-hoc kNN query (Definition 4) with the selected
	// algorithm variant; results ascend by (distance, id). Lazy-probe
	// variants may return non-exact results on a single tree; a sharded
	// coordinator always resolves results exactly (see ShardedIndex.AKNN).
	AKNN(q *fuzzy.Object, k int, alpha float64, algo AKNNAlgorithm) ([]Result, Stats, error)
	// LinearScanAKNN is the exhaustive correctness baseline (§3.1).
	LinearScanAKNN(q *fuzzy.Object, k int, alpha float64) ([]Result, Stats, error)
	// Refine probes any non-exact results and re-sorts by exact
	// (distance, id).
	Refine(q *fuzzy.Object, alpha float64, rs []Result) ([]Result, Stats, error)
	// RKNN answers the range kNN query over [alphaStart, alphaEnd]
	// (Definition 5); results ascend by object id with exact qualifying
	// ranges.
	RKNN(q *fuzzy.Object, k int, alphaStart, alphaEnd float64, algo RKNNAlgorithm) ([]RangedResult, Stats, error)
	// RangeSearch returns every object with d_α(A, q) ≤ radius, exact,
	// ascending by (distance, id).
	RangeSearch(q *fuzzy.Object, alpha, radius float64) ([]Result, Stats, error)
	// ReverseKNN returns every object that counts q among its own k nearest
	// neighbors at threshold α, ascending by (distance to q, id).
	ReverseKNN(q *fuzzy.Object, k int, alpha float64) ([]Result, Stats, error)
	// ExpectedDistKNN ranks by the integrated distance ∫₀¹ d_α dα (§2.1).
	ExpectedDistKNN(q *fuzzy.Object, k int) ([]Result, Stats, error)
	// Insert adds an object; it becomes visible to queries that start after
	// Insert returns.
	Insert(obj *fuzzy.Object) error
	// Delete retires an object; the locate probe is charged to the returned
	// Stats.
	Delete(id uint64) (Stats, error)
	// ApplyBatch group-commits inserts and deletes as one index transition
	// per shard (one writer-lock acquisition, one tree clone, one snapshot
	// publish, one store fsync), all-or-nothing on validation failure
	// (*BatchError). The stats slice has one entry per item, inserts first.
	ApplyBatch(inserts []*fuzzy.Object, deletes []uint64) ([]Stats, error)
	// Checkpoint cuts a durable checkpoint of every shard's store —
	// optionally compacting each shard's log afterwards — and returns
	// per-shard results in shard order. The writer stays live throughout
	// (the store's three-phase protocol, not the index write lock, provides
	// consistency). Indexes over stores without a durable log fail with
	// store.ErrUnsupported.
	Checkpoint(compact bool) ([]store.CheckpointInfo, error)
	// Degraded reports the sticky degraded state entered when the backing
	// store fail-stops after a storage fault (nil = healthy). A degraded
	// index keeps answering every query from the last published snapshot;
	// mutations and checkpoints fail with errors wrapping store.ErrFailed.
	Degraded() *DegradedState
	// StorageFaults counts store operations refused by fail-stopped
	// storage (the triggering fault plus every rejected retry).
	StorageFaults() int64
	// Len returns the number of indexed objects.
	Len() int
	// Dims returns the dimensionality (0 until known).
	Dims() int
	// Stats describes the index's physical layout for diagnostics: one
	// ShardStats per shard (a single entry for a plain Index).
	Stats() IndexStats
}

// Compile-time checks that both index kinds satisfy the contract.
var (
	_ Searcher = (*Index)(nil)
	_ Searcher = (*ShardedIndex)(nil)
)

// ShardStats describes one shard's physical state.
type ShardStats struct {
	// Objects is the shard's live object count.
	Objects int
	// Dims is the shard's dimensionality (0 while the shard is empty and
	// has never seen an object).
	Dims int
	// TreeHeight is the shard R-tree's height (0 when empty).
	TreeHeight int
	// TreeMaxEntries is the shard R-tree's node capacity.
	TreeMaxEntries int
	// Checkpoint is the shard store's checkpoint state; nil when the store
	// cannot checkpoint (in-memory or immutable stores).
	Checkpoint *store.CheckpointInfo
	// PageCache is the shard's block-cache state; nil for fully in-memory
	// shards.
	PageCache *pager.CacheStats
}

// IndexStats describes an index's physical layout.
type IndexStats struct {
	// Objects is the total live object count across shards.
	Objects int
	// Dims is the index dimensionality (0 until known).
	Dims int
	// Shards has one entry per shard, in shard order. A plain Index reports
	// itself as shard 0 of 1.
	Shards []ShardStats
}

// ShardOf maps an object id to its owning shard among n. Ids are hashed
// (splitmix64 finalizer) so that sequential or clustered id assignments
// still spread uniformly across shards; every layer that routes by id —
// inserts, deletes, store probes — must use this one function.
func ShardOf(id uint64, n int) int {
	if n <= 1 {
		return 0
	}
	x := id + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}
