package query

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/store"
)

func TestInsertDeleteBasics(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 1))
	objs := makeObjects(rng, 30, 10, 12, 8)
	ix := buildIndex(t, objs, Options{MinEntries: 2, MaxEntries: 6})
	q := makeQuery(rng, 10, 12, 8)

	// A fresh object inserted right next to the query must become its 1-NN.
	clone := fuzzy.MustNew(1000, q.WeightedPoints())
	if err := ix.Insert(clone); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 31 {
		t.Fatalf("Len = %d", ix.Len())
	}
	res, _, err := ix.AKNN(q, 1, 0.5, LBLPUB)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err = ix.Refine(q, 0.5, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 1000 || res[0].Dist != 0 {
		t.Fatalf("inserted twin not found as 1-NN: %+v", res)
	}

	// Deleting it restores the previous answer set.
	if _, err := ix.Delete(1000); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 30 {
		t.Fatalf("Len after delete = %d", ix.Len())
	}
	res, _, err = ix.AKNN(q, 1, 0.5, LBLPUB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 1 && res[0].ID == 1000 {
		t.Fatal("deleted object still returned")
	}

	// Error taxonomy.
	if err := ix.Insert(nil); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("nil insert: %v", err)
	}
	if err := ix.Insert(objs[0]); !errors.Is(err, store.ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if _, err := ix.Delete(1000); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := ix.Delete(99999); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("delete unknown: %v", err)
	}
	threeD := fuzzy.MustNew(2000, []fuzzy.WeightedPoint{{P: []float64{1, 2, 3}, Mu: 1}})
	if err := ix.Insert(threeD); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("mismatched dims insert: %v", err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMutationsOnReadOnlyStore(t *testing.T) {
	rng := rand.New(rand.NewPCG(32, 1))
	objs := makeObjects(rng, 5, 8, 10, 0)
	ms, err := store.NewMemStore(objs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(readOnly{ms}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(makeObjects(rng, 1, 8, 10, 0)[0]); !errors.Is(err, store.ErrReadOnly) {
		t.Fatalf("insert on read-only store: %v", err)
	}
	if _, err := ix.Delete(objs[0].ID()); !errors.Is(err, store.ErrReadOnly) {
		t.Fatalf("delete on read-only store: %v", err)
	}
}

// readOnly hides a store's write side.
type readOnly struct{ store.Reader }

// TestValidateQueryDimsRegression pins the fix for the dims check being
// skipped on empty indexes: an index that starts empty and learns its
// dimensionality from the first insert must reject mismatched query
// objects, including after it is drained again.
func TestValidateQueryDimsRegression(t *testing.T) {
	ms, err := store.NewMemStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(ms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q2 := fuzzy.MustNew(500, []fuzzy.WeightedPoint{{P: []float64{1, 2}, Mu: 1}})
	q3 := fuzzy.MustNew(501, []fuzzy.WeightedPoint{{P: []float64{1, 2, 3}, Mu: 1}})

	// Truly dimensionless (never-populated) index: any query dims pass
	// validation — there is nothing to contradict.
	if _, _, err := ix.AKNN(q3, 1, 0.5, Basic); err != nil {
		t.Fatalf("query on dimensionless index: %v", err)
	}

	// Populate with 2-D: 3-D queries must now fail on every entry point.
	obj := fuzzy.MustNew(1, []fuzzy.WeightedPoint{{P: []float64{5, 5}, Mu: 1}})
	if err := ix.Insert(obj); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.AKNN(q3, 1, 0.5, LBLPUB); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("AKNN with mismatched dims: %v", err)
	}
	if _, _, err := ix.RKNN(q3, 1, 0.2, 0.8, RSSICR); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("RKNN with mismatched dims: %v", err)
	}
	if _, _, err := ix.RangeSearch(q3, 0.5, 10); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("RangeSearch with mismatched dims: %v", err)
	}
	if _, _, err := ix.LinearScanAKNN(q3, 1, 0.5); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("LinearScanAKNN with mismatched dims: %v", err)
	}
	if _, _, err := ix.AKNN(q2, 1, 0.5, LBLPUB); err != nil {
		t.Fatalf("matching dims rejected: %v", err)
	}

	// The regression scenario: drain the index. The empty-index special
	// case used to skip the dims check here; the dimensionality is sticky
	// now, so the 3-D query must still be rejected.
	if _, err := ix.Delete(1); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 0 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if _, _, err := ix.AKNN(q3, 1, 0.5, LBLPUB); !errors.Is(err, ErrInvalidArgument) {
		t.Fatalf("empty-then-populated index accepted mismatched dims: %v", err)
	}
	if _, _, err := ix.AKNN(q2, 1, 0.5, LBLPUB); err != nil {
		t.Fatalf("matching dims rejected on drained index: %v", err)
	}
}

// TestSnapshotIsolation pins the core guarantee: a tree snapshot taken
// before mutations keeps answering for the old population, while new
// queries see the new one.
func TestSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 1))
	objs := makeObjects(rng, 40, 10, 12, 8)
	ix := buildIndex(t, objs, Options{MinEntries: 2, MaxEntries: 6})
	before := ix.treeForTest()

	for i := 0; i < 20; i++ {
		if _, err := ix.Delete(objs[i].ID()); err != nil {
			t.Fatal(err)
		}
	}
	extra := makeObjectsWithBase(rng, 5000, 10, 10, 12, 8)
	for _, o := range extra {
		if err := ix.Insert(o); err != nil {
			t.Fatal(err)
		}
	}

	if before.Len() != 40 {
		t.Fatalf("snapshot Len changed to %d", before.Len())
	}
	if err := before.CheckInvariants(); err != nil {
		t.Fatalf("snapshot corrupted by later mutations: %v", err)
	}
	if ix.Len() != 30 {
		t.Fatalf("live Len = %d", ix.Len())
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentQueriesDuringMutation runs direct index queries against a
// churning writer; run with -race. Every query must succeed — snapshots
// plus tombstone-retaining stores make mutation invisible to readers.
func TestConcurrentQueriesDuringMutation(t *testing.T) {
	rng := rand.New(rand.NewPCG(34, 1))
	objs := makeObjects(rng, 60, 8, 12, 8)
	ix := buildIndex(t, objs, Options{MinEntries: 2, MaxEntries: 6})
	q := makeQuery(rng, 8, 12, 8)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch i % 3 {
				case 0:
					_, _, err = ix.AKNN(q, 5, 0.5, AKNNAlgorithm(i%4))
				case 1:
					_, _, err = ix.RKNN(q, 3, 0.3, 0.8, RKNNAlgorithm(i%4))
				case 2:
					_, _, err = ix.RangeSearch(q, 0.5, 6)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	// Writer: 400 mutations, then stop the readers.
	wrng := rand.New(rand.NewPCG(35, 1))
	live := make([]uint64, 0, len(objs))
	for _, o := range objs {
		live = append(live, o.ID())
	}
	next := uint64(10_000)
	for op := 0; op < 400; op++ {
		if len(live) == 0 || wrng.Float64() < 0.55 {
			o := makeObjectsWithBase(wrng, next, 1, 8, 12, 8)[0]
			next++
			if err := ix.Insert(o); err != nil {
				t.Fatal(err)
			}
			live = append(live, o.ID())
		} else {
			i := wrng.IntN(len(live))
			if _, err := ix.Delete(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("query during mutation: %v", err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(live) {
		t.Fatalf("Len = %d, live = %d", ix.Len(), len(live))
	}
}
