package query

import (
	"math/rand/v2"
	"path/filepath"
	"testing"

	"fuzzyknn/internal/store"
)

// BenchmarkReopen measures restart cost: opening a log store and rebuilding
// the in-memory index over it. The live set is fixed; what varies is how
// much history the log carries (churn rounds of delete-all + reinsert-all)
// and whether a checkpoint+compaction ran before the "crash". Without a
// checkpoint, reopen replays the whole history — ns/op grows with churn.
// With one, reopen loads the snapshot and replays only the (empty) suffix,
// so ns/op stays at the 1x-history floor no matter how much history burned:
// that flat line is the O(live) restart claim, CI-gated like the other
// hot-path benchmarks.

const (
	reopenLive      = 512
	reopenChurn     = 5  // 5 rounds of delete+reinsert ≈ 11x the 1x record count
	reopenChurnDeep = 50 // ≈ 101x: a long-lived server's log, replay-dominated
)

// prepareReopenLog writes a log with the given churn, optionally
// checkpointed+compacted, and returns its path.
func prepareReopenLog(b *testing.B, churnRounds int, checkpoint bool) string {
	b.Helper()
	path := filepath.Join(b.TempDir(), "objects.fzl")
	s, err := store.OpenLogPolicy(path, 2, store.SyncOff)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 7))
	objs := makeObjects(rng, reopenLive, 16, 40, 0)
	for _, o := range objs {
		if err := s.Insert(o); err != nil {
			b.Fatal(err)
		}
	}
	for round := 0; round < churnRounds; round++ {
		for _, o := range objs {
			if err := s.Delete(o.ID()); err != nil {
				b.Fatal(err)
			}
			if err := s.Insert(o); err != nil {
				b.Fatal(err)
			}
		}
	}
	if checkpoint {
		if _, err := s.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.CompactLog(); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

func runReopen(b *testing.B, path string) {
	b.ReportAllocs()
	b.ResetTimer()
	replayed := 0
	for i := 0; i < b.N; i++ {
		s, err := store.OpenLog(path, 0)
		if err != nil {
			b.Fatal(err)
		}
		ix, err := Build(s, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if ix.Len() != reopenLive {
			b.Fatalf("len = %d", ix.Len())
		}
		replayed = s.ReplayedRecords()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(replayed), "replayed/op")
}

func BenchmarkReopen(b *testing.B) {
	b.Run("history=1x/checkpoint=off", func(b *testing.B) {
		runReopen(b, prepareReopenLog(b, 0, false))
	})
	b.Run("history=11x/checkpoint=off", func(b *testing.B) {
		runReopen(b, prepareReopenLog(b, reopenChurn, false))
	})
	b.Run("history=11x/checkpoint=on", func(b *testing.B) {
		runReopen(b, prepareReopenLog(b, reopenChurn, true))
	})
	b.Run("history=101x/checkpoint=off", func(b *testing.B) {
		runReopen(b, prepareReopenLog(b, reopenChurnDeep, false))
	})
	b.Run("history=101x/checkpoint=on", func(b *testing.B) {
		runReopen(b, prepareReopenLog(b, reopenChurnDeep, true))
	})
}
