package query

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/geom"
	"fuzzyknn/internal/hull"
	"fuzzyknn/internal/rtree"
	"fuzzyknn/internal/store"
)

// Index construction scans and decodes every object to compute its summary
// (support/kernel MBRs, L_opt lines, representative point) — for large
// on-disk datasets that is the dominant startup cost. This file persists
// the summaries so an index can be rebuilt from a side file without
// touching the object store.
//
// File layout (little-endian): magic, version, dims, count; one fixed-size
// record per object; CRC-32 of everything before it; trailing magic.

// ObjectSummary is the per-object data an R-tree leaf entry carries.
type ObjectSummary struct {
	ID     uint64
	Approx *fuzzy.BoundaryApprox
	Rep    geom.Point
}

const (
	summaryMagic   = "FZKNNIX1"
	summaryVersion = 1
)

// ErrSummaryCorrupt wraps all summary-file integrity failures.
var ErrSummaryCorrupt = errors.New("query: corrupt summary file")

// ErrSummaryMismatch reports a summary file that does not describe the
// given store (different ids or object count).
var ErrSummaryMismatch = errors.New("query: summary file does not match store")

// Summaries extracts every leaf entry's summary, ordered by object id. It
// fails when the index was built with a non-default estimator (only the
// paper's linear BoundaryApprox has a persistent form).
func (ix *Index) Summaries() ([]ObjectSummary, error) {
	var out []ObjectSummary
	var firstErr error
	var walk func(n *rtree.Node)
	walk = func(n *rtree.Node) {
		n = n.Resolve(nil)
		for _, e := range n.Entries() {
			if n.Leaf() {
				it := e.Data.(*leafItem)
				ba, ok := it.approx.(*fuzzy.BoundaryApprox)
				if !ok {
					if firstErr == nil {
						firstErr = fmt.Errorf("query: object %d uses a non-persistable estimator %T", it.id, it.approx)
					}
					continue
				}
				out = append(out, ObjectSummary{ID: it.id, Approx: ba, Rep: it.rep})
			} else {
				walk(e.Child)
			}
		}
	}
	if root := ix.read().tree.Root(); len(root.Entries()) > 0 {
		walk(root)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ix.pagedErr(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// summaryRecordSize is the fixed per-object record size for dimensionality d:
// id + support rect + kernel rect + hi/lo lines (m, t each per dim) + rep.
func summaryRecordSize(d int) int {
	return 8 + // id
		2*2*d*8 + // support + kernel rects (lo, hi per dim)
		2*2*d*8 + // hi + lo lines (m, t per dim)
		d*8 // rep point
}

// WriteSummaries serializes the summaries to w.
func WriteSummaries(w io.Writer, dims int, sums []ObjectSummary) error {
	size := 8 + 4 + 4 + 8 + len(sums)*summaryRecordSize(dims) + 4 + 8
	buf := make([]byte, 0, size)
	buf = append(buf, summaryMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, summaryVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dims))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(sums)))
	appendFloat := func(v float64) { buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v)) }
	appendRect := func(r geom.Rect) {
		for i := 0; i < dims; i++ {
			appendFloat(r.Lo[i])
		}
		for i := 0; i < dims; i++ {
			appendFloat(r.Hi[i])
		}
	}
	appendLines := func(ls []hull.Line) {
		for i := 0; i < dims; i++ {
			appendFloat(ls[i].M)
			appendFloat(ls[i].T)
		}
	}
	for _, s := range sums {
		if s.Approx == nil || len(s.Approx.HiLine) != dims || s.Rep.Dims() != dims {
			return fmt.Errorf("query: summary %d has wrong dimensionality", s.ID)
		}
		buf = binary.LittleEndian.AppendUint64(buf, s.ID)
		appendRect(s.Approx.Support)
		appendRect(s.Approx.Kernel)
		appendLines(s.Approx.HiLine)
		appendLines(s.Approx.LoLine)
		for i := 0; i < dims; i++ {
			appendFloat(s.Rep[i])
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	buf = append(buf, summaryMagic...)
	_, err := w.Write(buf)
	return err
}

// ReadSummaries parses a summary stream written by WriteSummaries.
func ReadSummaries(r io.Reader) (int, []ObjectSummary, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, nil, err
	}
	if len(data) < 8+4+4+8+4+8 {
		return 0, nil, fmt.Errorf("%w: too short", ErrSummaryCorrupt)
	}
	if string(data[len(data)-8:]) != summaryMagic {
		return 0, nil, fmt.Errorf("%w: bad trailing magic", ErrSummaryCorrupt)
	}
	body, crcB := data[:len(data)-12], data[len(data)-12:len(data)-8]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcB) {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrSummaryCorrupt)
	}
	if string(body[:8]) != summaryMagic {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrSummaryCorrupt)
	}
	if v := binary.LittleEndian.Uint32(body[8:]); v != summaryVersion {
		return 0, nil, fmt.Errorf("%w: unsupported version %d", ErrSummaryCorrupt, v)
	}
	dims := int(binary.LittleEndian.Uint32(body[12:]))
	count := int(binary.LittleEndian.Uint64(body[16:]))
	if count < 0 || (count > 0 && dims < 1) {
		return 0, nil, fmt.Errorf("%w: nonsense header", ErrSummaryCorrupt)
	}
	if want := 24 + count*summaryRecordSize(dims); want != len(body) {
		return 0, nil, fmt.Errorf("%w: length %d, want %d", ErrSummaryCorrupt, len(body), want)
	}
	pos := 24
	readFloat := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(body[pos:]))
		pos += 8
		return v
	}
	readRect := func() geom.Rect {
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		for i := 0; i < dims; i++ {
			lo[i] = readFloat()
		}
		for i := 0; i < dims; i++ {
			hi[i] = readFloat()
		}
		return geom.Rect{Lo: lo, Hi: hi}
	}
	readLines := func() []hull.Line {
		ls := make([]hull.Line, dims)
		for i := 0; i < dims; i++ {
			ls[i].M = readFloat()
			ls[i].T = readFloat()
		}
		return ls
	}
	sums := make([]ObjectSummary, count)
	for i := 0; i < count; i++ {
		id := binary.LittleEndian.Uint64(body[pos:])
		pos += 8
		approx := &fuzzy.BoundaryApprox{
			Support: readRect(),
			Kernel:  readRect(),
			HiLine:  readLines(),
			LoLine:  readLines(),
		}
		rep := make(geom.Point, dims)
		for j := 0; j < dims; j++ {
			rep[j] = readFloat()
		}
		sums[i] = ObjectSummary{ID: id, Approx: approx, Rep: rep}
	}
	return dims, sums, nil
}

// SaveSummaries writes the index's summaries to path.
func (ix *Index) SaveSummaries(path string) error {
	sums, err := ix.Summaries()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSummaries(f, ix.Dims(), sums); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// BuildFromSummaryFile reconstructs an index over st from a summary file,
// without reading a single object from the store. The summary must describe
// exactly the store's object ids.
func BuildFromSummaryFile(st store.Reader, path string, opts Options) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dims, sums, err := ReadSummaries(f)
	if err != nil {
		return nil, err
	}
	if st.Len() > 0 && dims != st.Dims() {
		return nil, fmt.Errorf("%w: dims %d vs store %d", ErrSummaryMismatch, dims, st.Dims())
	}
	ids := st.IDs()
	if len(sums) != len(ids) {
		return nil, fmt.Errorf("%w: %d summaries for %d objects", ErrSummaryMismatch, len(sums), len(ids))
	}
	for i, id := range ids { // both sorted ascending
		if sums[i].ID != id {
			return nil, fmt.Errorf("%w: summary id %d vs store id %d", ErrSummaryMismatch, sums[i].ID, id)
		}
	}
	opts = opts.withDefaults()
	items := make([]rtree.BulkItem, len(sums))
	for i, s := range sums {
		items[i] = rtree.BulkItem{
			Rect: s.Approx.Support,
			Data: &leafItem{id: s.ID, approx: s.Approx, rep: s.Rep},
		}
	}
	var tree *rtree.Tree
	if opts.Incremental {
		tree = rtree.New(opts.MinEntries, opts.MaxEntries)
		for _, it := range items {
			tree.Insert(it.Rect, it.Data)
		}
	} else {
		tree = rtree.BulkLoad(items, opts.MinEntries, opts.MaxEntries)
	}
	return newIndex(tree, st, opts), nil
}
