package query

import (
	"math"
	"sync"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/geom"
)

// Cross-shard AKNN: every shard contributes an incremental best-first
// stream of its objects in exact (α-distance, id) order, and the
// coordinator k-way-merges the streams. The paper's §3 lower bounds carry
// across shards unchanged: a cursor's queue head key lower-bounds the
// distance of everything the shard has not yet emitted, so the coordinator
// simply never pulls a shard whose bound exceeds the best buffered
// candidate — the shard's subtrees beyond that bound are never probed,
// which keeps total object accesses close to a single tree over the union.

// nnCursor incrementally enumerates one shard snapshot's objects in exact
// ascending (α-distance, id) order. It is the streaming form of the
// Basic/LB search (§3.1–3.2): nodes expand by MinDist, leaf entries are
// probed when they reach the queue head, and probed objects re-enter the
// queue keyed by exact distance. The pqueue's (key, kind, id) ordering
// guarantees that when an object pops, every entry that could still yield
// an equal-or-smaller (distance, id) has already been resolved — so the
// emission order is exact and deterministic.
//
// Lazy probing (§3.3) is deliberately not streamed: its admission rule is
// only sound relative to one tree's own top-k budget, which a cross-shard
// merge does not have. Cursors therefore always resolve exact distances;
// the algo variant only selects the leaf-entry lower bound (support MBR
// for Basic, the §3.2 conservative boundary MBR otherwise).
type nnCursor struct {
	ix    *Index
	q     *fuzzy.Object
	mq    geom.Rect
	alpha float64
	useLB bool
	// sc owns the cursor's heap, MBR-estimate buffer and distance
	// evaluator. Each cursor holds its own scratch (streams of one merge
	// advance interleaved, and the prefill phase runs them concurrently);
	// release() returns it to the pool when the merge is done.
	sc *scratch
	h  *bestFirstQueue
	st Stats
}

// newNNCursor opens a stream over one shard snapshot.
func newNNCursor(ix *Index, s *snapshot, q *fuzzy.Object, alpha float64, useLB bool) *nnCursor {
	sc := getScratch()
	sc.pq.reset()
	sc.dist.Reset(q, alpha)
	c := &nnCursor{
		ix:    ix,
		q:     q,
		mq:    q.MBR(alpha),
		alpha: alpha,
		useLB: useLB,
		sc:    sc,
		h:     &sc.pq,
	}
	if root := s.tree.Root(); len(root.Entries()) > 0 {
		// Key 0: the root is the only element when popped (every cursor is
		// pulled at least once during prefill before pendingLower is ever
		// consulted), so its key never decides a comparison.
		c.h.Push(pqItem{key: 0, kind: kindNode, node: root})
	}
	return c
}

// release returns the cursor's scratch to the pool; the cursor must not be
// advanced afterwards.
func (c *nnCursor) release() {
	if c.sc != nil {
		putScratch(c.sc)
		c.sc, c.h = nil, nil
	}
}

// pendingLower lower-bounds the α-distance of every object the cursor has
// not yet emitted (+Inf when drained). This is the shard's "remaining
// subtree MinDist" bound the coordinator's early stop keys off.
func (c *nnCursor) pendingLower() float64 {
	if c.h.Len() == 0 {
		return math.Inf(1)
	}
	return c.h.PeekKey()
}

// next emits the shard's next object in (distance, id) order, probing as
// many queue entries as needed; ok is false when the shard is exhausted.
func (c *nnCursor) next() (r Result, ok bool, err error) {
	for c.h.Len() > 0 {
		e := c.h.Pop()
		switch e.kind {
		case kindObject:
			return Result{ID: e.id, Dist: e.dist, Exact: true, Lower: e.dist, Upper: e.dist}, true, nil
		case kindNode:
			c.st.NodeAccesses++
			n := resolveNode(e.node, &c.st)
			ents := n.Entries()
			if n.Leaf() {
				for i := range ents {
					it := ents[i].Data.(*leafItem)
					var key float64
					if c.useLB {
						c.sc.est = it.approx.EstimateMBRInto(c.alpha, c.sc.est)
						key = geom.MinDist(c.sc.est, c.mq)
					} else {
						key = n.EntryMinDist(i, c.mq)
					}
					c.h.Push(pqItem{key: key, kind: kindLeaf, id: it.id, item: it})
				}
			} else {
				for i := range ents {
					c.h.Push(pqItem{key: n.EntryMinDist(i, c.mq), kind: kindNode, node: ents[i].Child})
				}
			}
		case kindLeaf:
			obj, err := c.ix.getObject(e.item.id, &c.st)
			if err != nil {
				return Result{}, false, err
			}
			c.st.DistanceEvals++
			d := c.sc.dist.Dist(obj)
			c.h.Push(pqItem{key: d, kind: kindObject, id: e.item.id, dist: d})
		}
	}
	if err := c.ix.pagedErr(); err != nil {
		return Result{}, false, err
	}
	return Result{}, false, nil
}

// shardStream is one shard's position in the merge: its cursor plus the
// results pulled but not yet emitted globally (in (dist, id) order).
type shardStream struct {
	cur *nnCursor
	buf []Result
	err error
}

func (s *shardStream) head() (Result, bool) {
	if len(s.buf) == 0 {
		return Result{}, false
	}
	return s.buf[0], true
}

// pull advances the cursor by one emission into buf; reports whether the
// buffer grew.
func (s *shardStream) pull() (bool, error) {
	r, ok, err := s.cur.next()
	if err != nil {
		return false, err
	}
	if ok {
		s.buf = append(s.buf, r)
	}
	return ok, nil
}

// resultLess is the global (distance, id) merge order.
func resultLess(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// mergeAKNN runs the cross-shard k-way merge over one cursor per shard and
// returns the global top k, exact, in (distance, id) order. st accumulates
// every cursor's probes and traversal counts.
//
// Two phases:
//
//  1. Prefill (parallel): every shard independently streams its first
//     ⌈k/n⌉ neighbors. This is the fan-out that buys within-query
//     parallelism; the budget bounds wasted probes to about one extra k
//     across all shards in the worst case (all answers in one shard).
//  2. Merge (sequential): repeatedly emit the smallest buffered (dist, id)
//     across shards. Before emitting, any shard with an empty buffer whose
//     pendingLower ≤ that candidate's distance is pulled first — it could
//     still hold a closer object, or an equal-distance one with a smaller
//     id. A shard whose bound exceeds the candidate is left untouched:
//     that is the early stop, and it is exact because pendingLower is a
//     true lower bound (§3.2 applied across shards).
func mergeAKNN(streams []*shardStream, k int, st *Stats) ([]Result, error) {
	// Phase 1: parallel prefill.
	budget := (k + len(streams) - 1) / len(streams)
	var wg sync.WaitGroup
	for _, s := range streams {
		wg.Add(1)
		go func(s *shardStream) {
			defer wg.Done()
			for len(s.buf) < budget {
				ok, err := s.pull()
				if err != nil {
					s.err = err
					return
				}
				if !ok {
					break
				}
			}
		}(s)
	}
	wg.Wait()
	for _, s := range streams {
		if s.err != nil {
			return nil, s.err
		}
	}

	// Phase 2: sequential bound-guided merge.
	out := make([]Result, 0, k)
	for len(out) < k {
		best := -1
		for i, s := range streams {
			if h, ok := s.head(); ok {
				if best < 0 {
					best = i
				} else if bh, _ := streams[best].head(); resultLess(h, bh) {
					best = i
				}
			}
		}
		progressed := false
		for _, s := range streams {
			if _, ok := s.head(); ok {
				continue
			}
			if best >= 0 {
				if bh, _ := streams[best].head(); s.cur.pendingLower() > bh.Dist {
					continue // early stop: this shard cannot beat or tie the candidate
				}
			}
			ok, err := s.pull()
			if err != nil {
				return nil, err
			}
			progressed = progressed || ok
		}
		if progressed {
			continue // a pull may have produced a new global minimum
		}
		if best < 0 {
			break // every shard drained
		}
		out = append(out, streams[best].buf[0])
		streams[best].buf = streams[best].buf[1:]
	}
	for _, s := range streams {
		addParallel(st, s.cur.st)
		// A shard whose page cache failed mid-stream emitted a truncated
		// stream; surface that instead of a silently incomplete answer.
		if err := s.cur.ix.pagedErr(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mergeTopK merges per-shard result lists (each already sorted by
// (distance, id)) into the global top k. Used by the fan-out paths whose
// shard answers are complete local top-k lists (linear scan, expected
// distance): the global top k is contained in the union of local top k's.
func mergeTopK(lists [][]Result, k int) []Result {
	var all []Result
	for _, l := range lists {
		all = append(all, l...)
	}
	sortResults(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}
