package query

import (
	"time"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/geom"
	"fuzzyknn/internal/rtree"
)

// ReverseKNN answers the reverse kNN query the paper lists as future work
// (§8): every object A that would count q among its own k nearest
// neighbors at threshold α — formally, fewer than k stored objects B ≠ A
// satisfy (d_α(A,B), id_B) < (d_α(A,q), id_q).
//
// The algorithm filters with summary-only bounds before paying any IO:
//
//  1. For each leaf entry A, lb = MinDist(M_A(α)*, M_Q(α)) lower-bounds
//     d_α(A, q). Representative kernel points give an upper bound for any
//     pair: ‖rep(A) − rep(B)‖ ≥ d_α(A, B) (both points belong to every
//     α-cut). If at least k representative points lie strictly within lb
//     of rep(A), then k objects are provably closer to A than q is, and A
//     is pruned without a single probe.
//  2. Survivors are verified exactly: probe A, compute d_α(A, q), and run
//     an α-range search around A with that radius, counting strictly
//     closer objects (ties broken by id against id_q) with early exit at k.
//
// Results are ordered by (d_α(A, q), id). The query object's id only
// breaks exact distance ties.
func (ix *Index) ReverseKNN(q *fuzzy.Object, k int, alpha float64) ([]Result, Stats, error) {
	started := time.Now()
	var st Stats
	s := ix.read()
	if err := ix.validateQuery(s, q, k, alpha); err != nil {
		return nil, st, err
	}
	sc := getScratch()
	defer putScratch(sc)
	cands, err := ix.reverseCandidates(sc, s, q, k, alpha, &st)
	if err != nil {
		return nil, st, err
	}
	results := make([]Result, len(cands))
	for i, c := range cands {
		results[i] = Result{ID: c.obj.ID(), Dist: c.dist, Exact: true, Lower: c.dist, Upper: c.dist}
	}
	sortResults(results)
	st.Duration = time.Since(started)
	return results, st, nil
}

// ReverseKNN is the package-level form of Index.ReverseKNN, kept for
// callers holding a concrete *Index.
func ReverseKNN(ix *Index, q *fuzzy.Object, k int, alpha float64) ([]Result, Stats, error) {
	return ix.ReverseKNN(q, k, alpha)
}

// revCandidate is one verified reverse-kNN answer within a single tree: the
// probed object, its exact distance to q, and how many objects of the SAME
// tree are strictly closer to it than q (exact, in [0, k)).
type revCandidate struct {
	obj    *fuzzy.Object
	dist   float64
	closer int
}

// reverseCandidates runs the filter+verify pipeline against one snapshot
// and returns the surviving candidates in tree order. On a single-tree
// index these are the final answers; a sharded coordinator treats them as
// a conservative candidate set (membership in the global answer requires
// that the closer-counts summed across all shards stay below k) and
// finishes the count against the other shards. All traversal state lives
// in sc; the returned candidates are freshly allocated and safe to keep.
func (ix *Index) reverseCandidates(sc *scratch, s *snapshot, q *fuzzy.Object, k int, alpha float64, st *Stats) ([]revCandidate, error) {
	mq := q.MBR(alpha)

	// Collect leaf entries and build the representative-point tree, both in
	// scratch storage.
	items := collectLeafItems(sc.items[:0], s.tree.Root(), st)
	sc.items = items
	if len(items) == 0 {
		return nil, nil
	}
	reps := sc.points[:0]
	for _, it := range items {
		reps = append(reps, it.rep)
	}
	sc.points = reps
	sc.repTree.Rebuild(reps)
	sc.dist.Reset(q, alpha)

	var cands []revCandidate
	for i, it := range items {
		sc.est = it.approx.EstimateMBRInto(alpha, sc.est)
		lb := geom.MinDist(sc.est, mq)
		// Filter: k other representatives strictly within lb of rep(A)
		// certify k objects closer than q. The strictness margin excludes
		// A's own representative (distance 0) separately.
		if lb > 0 {
			closer := 0
			sc.repTree.ForEachWithin(reps[i], lb, func(j int, d float64) bool {
				if j != i && d < lb {
					closer++
				}
				return closer < k
			})
			if closer >= k {
				continue
			}
		}
		// Verify: exact d_α(A, q), then count strictly closer objects.
		a, err := ix.getObject(it.id, st)
		if err != nil {
			return nil, err
		}
		st.DistanceEvals++
		dq := sc.dist.Dist(a)
		closer, err := ix.countCloser(sc, s, a, alpha, dq, q.ID(), k, st)
		if err != nil {
			return nil, err
		}
		if closer < k {
			cands = append(cands, revCandidate{obj: a, dist: dq, closer: closer})
		}
	}
	if err := ix.pagedErr(); err != nil {
		return nil, err
	}
	return cands, nil
}

// collectLeafItems appends every leaf item below n to dst, charging node
// accesses to st.
func collectLeafItems(dst []*leafItem, n *rtree.Node, st *Stats) []*leafItem {
	n = resolveNode(n, st)
	if len(n.Entries()) == 0 {
		return dst
	}
	st.NodeAccesses++
	for _, e := range n.Entries() {
		if n.Leaf() {
			dst = append(dst, e.Data.(*leafItem))
		} else {
			dst = collectLeafItems(dst, e.Child, st)
		}
	}
	return dst
}

// closerRun is the closure-free state of one countCloser traversal.
type closerRun struct {
	ix     *Index
	ma     geom.Rect
	aID    uint64
	alpha  float64
	radius float64
	qID    uint64
	limit  int
	st     *Stats
	sc     *scratch
	count  int
}

// countCloser counts stored objects B ≠ a with (d_α(a,B), id_B) <
// (radius, qID), stopping at limit. It prunes subtrees and entries whose
// lower bound already exceeds radius. The secondary distance evaluator is
// pinned to (a, α) so consecutive evaluations against a share one tree.
func (ix *Index) countCloser(sc *scratch, s *snapshot, a *fuzzy.Object, alpha, radius float64, qID uint64, limit int, st *Stats) (int, error) {
	sc.dist2.Reset(a, alpha)
	r := &closerRun{
		ix:     ix,
		ma:     a.MBR(alpha),
		aID:    a.ID(),
		alpha:  alpha,
		radius: radius,
		qID:    qID,
		limit:  limit,
		st:     st,
		sc:     sc,
	}
	if root := s.tree.Root(); len(root.Entries()) > 0 {
		if err := r.visit(root); err != nil {
			return 0, err
		}
	}
	if err := ix.pagedErr(); err != nil {
		return 0, err
	}
	return r.count, nil
}

func (r *closerRun) visit(n *rtree.Node) error {
	r.st.NodeAccesses++
	ents := n.Entries()
	for i := range ents {
		if r.count >= r.limit {
			return nil
		}
		if n.Leaf() {
			it := ents[i].Data.(*leafItem)
			if it.id == r.aID {
				continue
			}
			r.sc.est = it.approx.EstimateMBRInto(r.alpha, r.sc.est)
			if geom.MinDist(r.sc.est, r.ma) > r.radius {
				continue
			}
			b, err := r.ix.getObject(it.id, r.st)
			if err != nil {
				return err
			}
			r.st.DistanceEvals++
			d := r.sc.dist2.Dist(b)
			if d < r.radius || (d == r.radius && it.id < r.qID) {
				r.count++
			}
		} else if n.EntryMinDist(i, r.ma) <= r.radius {
			if err := r.visit(resolveNode(ents[i].Child, r.st)); err != nil {
				return err
			}
		}
	}
	return nil
}
