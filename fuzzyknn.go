// Package fuzzyknn is a library for k-nearest-neighbor search over fuzzy
// objects — point clouds whose members carry membership probabilities — as
// introduced by Zheng, Fung and Zhou, "K-Nearest Neighbor Search for Fuzzy
// Objects", SIGMOD 2010.
//
// A fuzzy object A is a finite set of weighted points ⟨a, µ(a)⟩ with
// µ ∈ (0, 1] and a non-empty kernel (µ = 1). Its α-cut A_α keeps the points
// with µ ≥ α, and the α-distance between two objects is the closest-pair
// distance of their α-cuts. Two query types are supported:
//
//   - AKNN(q, k, α): the k objects with smallest α-distance to q, at one
//     user-chosen confidence threshold α.
//   - RKNN(q, k, [αs, αe]): every object belonging to some kNN set within
//     the threshold range, together with its exact qualifying range.
//
// Basic usage:
//
//	objs := ...                                  // []*fuzzyknn.Object
//	idx, err := fuzzyknn.NewIndex(objs, nil)     // in-memory index
//	res, stats, err := idx.AKNN(q, 10, 0.5, fuzzyknn.LBLPUB)
//
// Datasets can also be persisted with SaveObjects and served from disk via
// OpenIndex, in which case the Stats.ObjectAccesses metric counts real
// storage probes, matching the cost model of the paper.
package fuzzyknn

import (
	"fmt"
	"io"
	"strings"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/geom"
	"fuzzyknn/internal/interval"
	"fuzzyknn/internal/query"
	"fuzzyknn/internal/store"
)

// Point is a point in d-dimensional Euclidean space.
type Point = geom.Point

// WeightedPoint is a point with its membership probability µ ∈ (0, 1].
type WeightedPoint = fuzzy.WeightedPoint

// Object is an immutable fuzzy object. Construct with NewObject.
type Object = fuzzy.Object

// Interval is a range of probability thresholds with open/closed endpoints.
type Interval = interval.Interval

// IntervalSet is a canonical union of intervals — the type of qualifying
// ranges returned by RKNN.
type IntervalSet = interval.Set

// Result is one AKNN answer; see the Exact field for lazy-probe semantics.
type Result = query.Result

// RangedResult is one RKNN answer with its qualifying range.
type RangedResult = query.RangedResult

// Stats reports the cost of a query (object accesses, node accesses,
// distance evaluations, wall time, ...).
type Stats = query.Stats

// ErrInvalidQuery tags argument-validation failures of the query entry
// points (bad k, alpha out of range, nil or mismatched query object, ...).
// Test with errors.Is to tell client mistakes from execution failures.
var ErrInvalidQuery = query.ErrInvalidArgument

// ErrNotFound is returned by Object for unknown object ids and by Delete
// for ids that are not live.
var ErrNotFound = store.ErrNotFound

// ErrReadOnly is returned by Insert/Delete on indexes whose store has no
// write side (e.g. one opened from an immutable store file with OpenIndex).
var ErrReadOnly = store.ErrReadOnly

// ErrDuplicate is returned by Insert when the object id is already live.
var ErrDuplicate = store.ErrDuplicate

// ErrCheckpointUnsupported is returned by Checkpoint on indexes whose
// store has no durable log (in-memory NewIndex, immutable OpenIndex).
var ErrCheckpointUnsupported = store.ErrUnsupported

// ErrDegraded tags writes refused by an index whose backing store
// fail-stopped after a storage fault (a failed fsync or a write whose
// durability cannot be trusted). The condition is sticky: it never clears
// in place — recovery is reopening the index on healthy storage, which
// replays exactly the acknowledged prefix. Reads keep serving the last
// published snapshot throughout; see Index.Degraded.
var ErrDegraded = store.ErrFailed

// DegradedState describes a degraded index: why it fail-stopped and when.
type DegradedState = query.DegradedState

// CheckpointInfo describes one shard store's durable checkpoint state: the
// snapshot generation and size, and how much log the next open must replay
// on top of it.
type CheckpointInfo = store.CheckpointInfo

// BatchError rejects an entire ApplyBatch call: validation found the
// listed item errors and nothing was applied (all-or-nothing). Retrieve it
// with errors.As to learn every offending item's position.
type BatchError = query.BatchError

// BatchItemError locates one offending item of a rejected batch.
type BatchItemError = query.BatchItemError

// BatchOp tells which half of a batch a BatchItemError's position indexes.
type BatchOp = query.BatchOp

// BatchOp values.
const (
	BatchInsertOp = query.OpInsert
	BatchDeleteOp = query.OpDelete
)

// FsyncPolicy selects when a log-backed index fsyncs; see the Fsync*
// constants and Config.Fsync.
type FsyncPolicy = store.SyncPolicy

// Fsync policies for log-backed indexes, trading durability of
// acknowledged writes for throughput (never integrity — a crash always
// leaves a log that reopens cleanly; the policy only bounds how much
// acknowledged tail can be lost):
//
//   - FsyncAlways: fsync after every committed mutation, single or batch.
//     The default, and the strongest guarantee.
//   - FsyncBatch: fsync once per ApplyBatch group commit; single
//     Insert/Delete appends ride the OS page cache. Acknowledged batches
//     survive power loss, recently acknowledged single mutations may not.
//   - FsyncOff: never fsync; the OS flushes at its leisure.
const (
	FsyncAlways = store.SyncAlways
	FsyncBatch  = store.SyncBatch
	FsyncOff    = store.SyncOff
)

// ParseFsyncPolicy resolves the CLI names of the fsync policies:
// always | batch | off (case-insensitive; empty selects FsyncAlways).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("fuzzyknn: unknown fsync policy %q (want always | batch | off)", s)
}

// ParseAKNNAlgorithm resolves the CLI/HTTP names of the AKNN variants:
// basic | lb | lb-lp | lb-lp-ub (case-insensitive; empty selects LBLPUB).
func ParseAKNNAlgorithm(s string) (AKNNAlgorithm, error) {
	switch strings.ToLower(s) {
	case "basic":
		return Basic, nil
	case "lb":
		return LB, nil
	case "lb-lp", "lblp":
		return LBLP, nil
	case "", "lb-lp-ub", "lblpub":
		return LBLPUB, nil
	}
	return 0, fmt.Errorf("fuzzyknn: unknown AKNN algorithm %q (want basic | lb | lb-lp | lb-lp-ub)", s)
}

// ParseRKNNAlgorithm resolves the CLI/HTTP names of the RKNN variants:
// naive | basic | rss | rss-icr (case-insensitive; empty selects RSSICR).
func ParseRKNNAlgorithm(s string) (RKNNAlgorithm, error) {
	switch strings.ToLower(s) {
	case "naive":
		return Naive, nil
	case "basic":
		return BasicRKNN, nil
	case "rss":
		return RSS, nil
	case "", "rss-icr", "rssicr":
		return RSSICR, nil
	}
	return 0, fmt.Errorf("fuzzyknn: unknown RKNN algorithm %q (want naive | basic | rss | rss-icr)", s)
}

// AKNNAlgorithm selects the AKNN search variant.
type AKNNAlgorithm = query.AKNNAlgorithm

// AKNN variants in the paper's order: the baseline best-first search, the
// improved lower bound, lazy probing, and the improved upper bound.
const (
	Basic  = query.Basic
	LB     = query.LB
	LBLP   = query.LBLP
	LBLPUB = query.LBLPUB
)

// RKNNAlgorithm selects the RKNN search variant.
type RKNNAlgorithm = query.RKNNAlgorithm

// RKNN variants in the paper's order.
const (
	Naive     = query.Naive
	BasicRKNN = query.BasicRKNN
	RSS       = query.RSS
	RSSICR    = query.RSSICR
)

// NewObject validates and builds a fuzzy object from weighted points:
// memberships in (0, 1], at least one µ = 1 point, consistent dimensions.
func NewObject(id uint64, points []WeightedPoint) (*Object, error) {
	return fuzzy.New(id, points)
}

// AlphaDistance computes d_α(a, b), the closest-pair distance between the
// two α-cuts.
func AlphaDistance(a, b *Object, alpha float64) float64 {
	return fuzzy.AlphaDist(a, b, alpha)
}

// Profile is the full step function α ↦ d_α(A, Q) for one object pair.
type Profile = fuzzy.Profile

// DistanceProfile computes the complete distance profile between two
// objects in one incremental pass.
func DistanceProfile(a, q *Object) *Profile {
	return fuzzy.ComputeProfile(a, q)
}

// Config tunes index construction. The zero value (or a nil pointer) picks
// sensible defaults.
type Config struct {
	// NodeMin / NodeMax are R-tree node capacities (defaults 25/64).
	NodeMin, NodeMax int
	// SampleSize is the number of points sampled from the query's α-cut for
	// the improved upper bound (default 16).
	SampleSize int
	// SampleSeed fixes the sampling for reproducible experiments.
	SampleSeed uint64
	// CacheSize, when positive, interposes an LRU object cache of that many
	// objects between the index and storage. Accesses are still counted
	// before the cache, preserving the paper's cost accounting.
	CacheSize int
	// Incremental builds the R-tree by repeated insertion instead of STR
	// bulk loading.
	Incremental bool
	// SummaryFile, when set on OpenIndex, rebuilds the index from a
	// persisted summary file (written by SaveSummaries) instead of scanning
	// and decoding every stored object. The file must describe exactly the
	// store's objects.
	SummaryFile string
	// StaircaseSteps, when at least 2, replaces the paper's linear boundary
	// approximation with a conservative staircase over that many membership
	// levels (the future-work variant of §3.2): tighter bounds, more memory
	// per object. Indexes built this way cannot persist summaries.
	StaircaseSteps int
	// Shards, when at least 2, hash-partitions the objects across that many
	// independent R-trees behind a coordinator that fans every query out in
	// parallel and merges exactly — same results, byte for byte, as a
	// single tree over the same objects (AKNN answers always come refined).
	// Mutations route to the owning shard by id hash. With OpenLogIndex
	// each shard appends to its own log file ("<path>.shard<i>-of-<n>"), so
	// an index must be reopened with the same shard count it was created
	// with. Shards > 1 cannot be combined with SummaryFile. 0 or 1 selects
	// the single-tree layout.
	Shards int
	// Fsync selects the durability policy of a log-backed index
	// (OpenLogIndex only): when the log fsyncs acknowledged mutations. The
	// zero value is FsyncAlways, the historical behavior; FsyncBatch keeps
	// group commits (ApplyBatch, Engine batch ingest, the server's batch
	// endpoint) durable while letting single mutations ride the page
	// cache. See the Fsync* constants for the exact tradeoffs.
	Fsync FsyncPolicy
}

func (c *Config) orDefault() Config {
	if c == nil {
		return Config{}
	}
	return *c
}

// Index answers AKNN and RKNN queries over a set of fuzzy objects. The set
// is mutable: Insert and Delete add and retire objects while queries are in
// flight, with snapshot isolation — every query runs against the exact
// object population that was live when it started. In-memory indexes
// (NewIndex) and log-backed indexes (OpenLogIndex) accept mutations;
// indexes over immutable store files (OpenIndex) are read-only.
//
// With Config.Shards > 1 the objects are hash-partitioned across that many
// independent R-trees and every query fans out in parallel behind the same
// API; see Config.Shards.
type Index struct {
	inner     query.Searcher
	single    *query.Index      // non-nil iff unsharded (summary persistence)
	countings []*store.Counting // per-shard access counters, in shard order
	closers   []io.Closer       // underlying files (OpenIndex/OpenLogIndex)
	lrus      []*store.LRU      // object caches (Config.CacheSize), for stats
}

// NewIndex builds an in-memory index over the given objects: one MemStore
// and tree, or — with cfg.Shards > 1 — one MemStore and tree per shard.
func NewIndex(objs []*Object, cfg *Config) (*Index, error) {
	c := cfg.orDefault()
	n := shardCount(c)
	if n == 1 {
		ms, err := store.NewMemStore(objs)
		if err != nil {
			return nil, fmt.Errorf("fuzzyknn: %w", err)
		}
		return buildIndex(ms, nil, c)
	}
	if err := checkShardedConfig(c); err != nil {
		return nil, err
	}
	parts := make([][]*Object, n)
	for _, o := range objs {
		if o == nil {
			return nil, fmt.Errorf("fuzzyknn: %w: nil object", ErrInvalidQuery)
		}
		s := query.ShardOf(o.ID(), n)
		parts[s] = append(parts[s], o)
	}
	shards := make([]*query.Index, n)
	countings := make([]*store.Counting, n)
	var lrus []*store.LRU
	for i := range shards {
		ms, err := store.NewMemStore(parts[i])
		if err != nil {
			return nil, fmt.Errorf("fuzzyknn: %w", err)
		}
		var lru *store.LRU
		shards[i], countings[i], lru, err = buildShard(ms, perShardCache(c.CacheSize, n), c, nil)
		if err != nil {
			return nil, err
		}
		if lru != nil {
			lrus = append(lrus, lru)
		}
	}
	return assembleSharded(shards, countings, lrus, nil)
}

// shardCount normalizes Config.Shards (0 and 1 are both the single-tree
// layout).
func shardCount(c Config) int {
	if c.Shards > 1 {
		return c.Shards
	}
	return 1
}

// perShardCache splits a whole-index cache budget across n shards.
func perShardCache(total, n int) int {
	if total <= 0 {
		return 0
	}
	return (total + n - 1) / n
}

// checkShardedConfig rejects options that only make sense on one tree.
func checkShardedConfig(c Config) error {
	if c.SummaryFile != "" {
		return fmt.Errorf("fuzzyknn: Config.SummaryFile requires Shards <= 1")
	}
	return nil
}

// assembleSharded wraps built shards into a public Index.
func assembleSharded(shards []*query.Index, countings []*store.Counting, lrus []*store.LRU, closers []io.Closer) (*Index, error) {
	sx, err := query.NewSharded(shards)
	if err != nil {
		return nil, fmt.Errorf("fuzzyknn: %w", err)
	}
	return &Index{inner: sx, countings: countings, lrus: lrus, closers: closers}, nil
}

// SaveObjects persists objects into a single store file that OpenIndex can
// serve queries from. All objects must share the given dimensionality.
func SaveObjects(path string, dims int, objs []*Object) error {
	return store.WriteAll(path, dims, objs)
}

// OpenIndex opens a store file written by SaveObjects and builds an index
// over it. Object probes during queries read from disk (optionally through
// an LRU cache, see Config.CacheSize). The resulting index is read-only
// (Insert/Delete fail with ErrReadOnly); use OpenLogIndex for a mutable
// on-disk index. With cfg.Shards > 1 the single store file serves several
// trees: each shard indexes its hash partition of the stored objects and
// counts its own accesses, while probes share one file handle (and one
// cache). Close the index when done.
func OpenIndex(path string, cfg *Config) (*Index, error) {
	c := cfg.orDefault()
	ds, err := store.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fuzzyknn: %w", err)
	}
	n := shardCount(c)
	if n == 1 {
		ix, err := buildIndex(ds, ds, c)
		if err != nil {
			ds.Close()
			return nil, err
		}
		return ix, nil
	}
	if err := checkShardedConfig(c); err != nil {
		ds.Close()
		return nil, err
	}
	var reader store.Reader = ds
	var lrus []*store.LRU
	if c.CacheSize > 0 {
		lru := store.NewLRU(reader, c.CacheSize)
		reader, lrus = lru, []*store.LRU{lru}
	}
	shards := make([]*query.Index, n)
	countings := make([]*store.Counting, n)
	for i := range shards {
		i := i
		keep := func(id uint64) bool { return query.ShardOf(id, n) == i }
		shards[i], countings[i], _, err = buildShard(reader, 0, c, keep)
		if err != nil {
			ds.Close()
			return nil, err
		}
	}
	ix, err := assembleSharded(shards, countings, lrus, []io.Closer{ds})
	if err != nil {
		ds.Close()
		return nil, err
	}
	return ix, nil
}

// OpenLogIndex opens (or creates) a mutable on-disk index backed by an
// append-only log store: every Insert appends a durable put record, every
// Delete a tombstone, and reopening replays the log — a file cut short by a
// crash mid-append recovers by discarding the partial tail. For a new file,
// dims fixes the dimensionality and must be >= 1; for an existing file it
// must be 0 or match. With cfg.Shards > 1 every shard owns its own log
// ("<path>.shard<i>-of-<n>"), so shards replay, append and fsync
// independently; reopen with the same shard count. Close the index when
// done.
func OpenLogIndex(path string, dims int, cfg *Config) (*Index, error) {
	c := cfg.orDefault()
	n := shardCount(c)
	if n == 1 {
		ls, err := store.OpenLogPolicy(path, dims, c.Fsync)
		if err != nil {
			return nil, fmt.Errorf("fuzzyknn: %w", err)
		}
		ix, err := buildIndex(ls, ls, c)
		if err != nil {
			ls.Close()
			return nil, err
		}
		return ix, nil
	}
	if err := checkShardedConfig(c); err != nil {
		return nil, err
	}
	shards := make([]*query.Index, n)
	countings := make([]*store.Counting, n)
	var lrus []*store.LRU
	var closers []io.Closer
	fail := func(err error) (*Index, error) {
		for _, cl := range closers {
			cl.Close()
		}
		return nil, err
	}
	for i := range shards {
		ls, err := store.OpenLogPolicy(shardLogPath(path, i, n), dims, c.Fsync)
		if err != nil {
			return fail(fmt.Errorf("fuzzyknn: shard %d: %w", i, err))
		}
		closers = append(closers, ls)
		var lru *store.LRU
		shards[i], countings[i], lru, err = buildShard(ls, perShardCache(c.CacheSize, n), c, nil)
		if err != nil {
			return fail(err)
		}
		if lru != nil {
			lrus = append(lrus, lru)
		}
	}
	ix, err := assembleSharded(shards, countings, lrus, closers)
	if err != nil {
		return fail(err)
	}
	return ix, nil
}

// shardLogPath names shard i's log file. The shard count is baked into the
// name so a reopen with a different Shards value finds empty fresh logs
// instead of silently replaying a wrong partition.
func shardLogPath(path string, i, n int) string {
	return fmt.Sprintf("%s.shard%d-of-%d", path, i, n)
}

// buildIndex assembles the single-tree layout (the pre-sharding code path,
// kept byte-identical for Shards <= 1).
func buildIndex(r store.Reader, closer io.Closer, cfg Config) (*Index, error) {
	inner, counting, lru, err := buildShard(r, cfg.CacheSize, cfg, nil)
	if err != nil {
		return nil, err
	}
	ix := &Index{inner: inner, single: inner, countings: []*store.Counting{counting}}
	if lru != nil {
		ix.lrus = []*store.LRU{lru}
	}
	if closer != nil {
		ix.closers = []io.Closer{closer}
	}
	return ix, nil
}

// buildShard stacks one shard's readers (optional LRU, then the access
// counter) and builds its tree over the ids keep admits (nil = all). The
// LRU, when configured, is also returned so the index can expose its
// hit/miss counters.
func buildShard(r store.Reader, cacheCap int, cfg Config, keep func(uint64) bool) (*query.Index, *store.Counting, *store.LRU, error) {
	var reader store.Reader = r
	var lru *store.LRU
	if cacheCap > 0 {
		lru = store.NewLRU(reader, cacheCap)
		reader = lru
	}
	counting := store.NewCounting(reader)
	opts := query.Options{
		MinEntries:  cfg.NodeMin,
		MaxEntries:  cfg.NodeMax,
		SampleSize:  cfg.SampleSize,
		SampleSeed:  cfg.SampleSeed,
		Incremental: cfg.Incremental,
	}
	if cfg.StaircaseSteps >= 2 {
		steps := cfg.StaircaseSteps
		opts.Estimator = func(o *fuzzy.Object) fuzzy.MBREstimator {
			return fuzzy.NewStaircaseApprox(o, steps)
		}
	}
	var inner *query.Index
	var err error
	if cfg.SummaryFile != "" {
		inner, err = query.BuildFromSummaryFile(counting, cfg.SummaryFile, opts)
	} else {
		inner, err = query.BuildFiltered(counting, opts, keep)
	}
	if err != nil {
		return nil, nil, nil, fmt.Errorf("fuzzyknn: %w", err)
	}
	counting.Reset() // exclude index construction from query accounting
	return inner, counting, lru, nil
}

// SaveSummaries persists the index's per-object summaries (MBRs,
// conservative boundary lines, representative points) so a later OpenIndex
// with Config.SummaryFile can skip the full store scan. Not supported on
// sharded indexes (a summary file describes exactly one tree's store).
func (ix *Index) SaveSummaries(path string) error {
	if ix.single == nil {
		return fmt.Errorf("fuzzyknn: SaveSummaries requires Shards <= 1")
	}
	return ix.single.SaveSummaries(path)
}

// Close releases the underlying store files, if any. The index must not be
// used afterwards. Closing an in-memory index is a no-op.
func (ix *Index) Close() error {
	var first error
	for _, c := range ix.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Insert adds an object to the index and its store. The object becomes
// visible to queries that start after Insert returns; queries already in
// flight complete against the population they started with (snapshot
// isolation). It fails with ErrInvalidQuery for nil or dimensionally
// mismatched objects, ErrDuplicate for a live id collision, and
// ErrReadOnly when the underlying store cannot be written (OpenIndex).
func (ix *Index) Insert(obj *Object) error {
	return ix.inner.Insert(obj)
}

// Delete retires the object with the given id. Queries already in flight
// still see it (and can still probe its payload — deletes are logical
// tombstones in the store); queries started after Delete returns do not.
// It fails with ErrNotFound for ids that are not live and ErrReadOnly on
// read-only indexes. Locating the object costs one object access (counted
// in TotalObjectAccesses; BatchDelete responses carry it as Stats).
func (ix *Index) Delete(id uint64) error {
	_, err := ix.inner.Delete(id)
	return err
}

// ApplyBatch group-commits a batch of mutations — inserts, then deletes —
// as one index transition per shard: one writer-lock acquisition, one
// copy-on-write tree clone, one snapshot publish, and (log-backed) ONE
// write and ONE fsync for the whole batch. Queries observe either none of
// the batch or all of it (per shard), and bulk ingest through ApplyBatch is
// an order of magnitude faster than an Insert loop on a log-backed index.
//
// The batch must be self-consistent: each id appears at most once across
// inserts and deletes together, insert ids must not be live, delete ids
// must be live, dimensionalities must agree. Any violation rejects the
// whole batch with a *BatchError listing every offending item — and
// nothing is applied. Locate probes for deletes are counted in
// TotalObjectAccesses like any store access.
func (ix *Index) ApplyBatch(inserts []*Object, deletes []uint64) error {
	_, err := ix.inner.ApplyBatch(inserts, deletes)
	return err
}

// Checkpoint cuts a durable checkpoint of every shard's log store and, when
// compact is true, also compacts each shard's log down to the records the
// checkpoint does not cover. After a checkpoint, OpenLogIndex restores the
// index by loading the snapshot (bulk-rebuilding each shard's R-tree in one
// STR pass) and replaying only the log suffix written since the cut — so
// restart cost is proportional to live data, not to total write history.
// The index stays fully live during the call: queries and mutations proceed
// concurrently, and mutations landing mid-checkpoint are simply part of the
// suffix the next open replays. Returns one CheckpointInfo per shard, in
// shard order. Fails with ErrCheckpointUnsupported on in-memory (NewIndex)
// and immutable (OpenIndex) indexes.
func (ix *Index) Checkpoint(compact bool) ([]CheckpointInfo, error) {
	return ix.inner.Checkpoint(compact)
}

// Degraded reports the index's sticky degraded state, or nil while it is
// healthy. A degraded index answers every query from the last published
// snapshot but refuses Insert/Delete/ApplyBatch/Checkpoint with errors
// wrapping ErrDegraded.
func (ix *Index) Degraded() *DegradedState { return ix.inner.Degraded() }

// StorageFaults counts store operations refused by fail-stopped storage:
// the triggering fault plus every rejected retry.
func (ix *Index) StorageFaults() int64 { return ix.inner.StorageFaults() }

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return ix.inner.Len() }

// Dims returns the dimensionality of the indexed objects.
func (ix *Index) Dims() int { return ix.inner.Dims() }

// TotalObjectAccesses returns the cumulative number of object probes since
// the index was built (all queries combined, summed across shards).
func (ix *Index) TotalObjectAccesses() int64 {
	var n int64
	for _, c := range ix.countings {
		n += c.Count()
	}
	return n
}

// NumShards returns the number of shards (1 for a single-tree index).
func (ix *Index) NumShards() int { return len(ix.countings) }

// ShardInfo describes one shard for diagnostics: its live object count,
// dimensionality, R-tree height and cumulative object accesses.
type ShardInfo struct {
	Objects        int
	Dims           int
	TreeHeight     int
	ObjectAccesses int64
	// Checkpoint is the shard store's checkpoint state; nil when the store
	// cannot checkpoint (in-memory or immutable stores).
	Checkpoint *CheckpointInfo
	// PageCache is the shard's block-cache counters; nil for fully
	// resident (non-paged) shards.
	PageCache *CacheStats
}

// ShardInfo reports per-shard physical state, in shard order (one entry
// for a single-tree index).
func (ix *Index) ShardInfo() []ShardInfo {
	st := ix.inner.Stats()
	out := make([]ShardInfo, len(st.Shards))
	for i, s := range st.Shards {
		out[i] = ShardInfo{
			Objects:        s.Objects,
			Dims:           s.Dims,
			TreeHeight:     s.TreeHeight,
			ObjectAccesses: ix.countings[i].Count(),
			Checkpoint:     s.Checkpoint,
		}
		if s.PageCache != nil {
			cs := cacheStatsFrom(*s.PageCache)
			out[i].PageCache = &cs
		}
	}
	return out
}

// AKNN answers the ad-hoc kNN query: the k objects with smallest α-distance
// to q. Results come ordered by ascending distance. With the lazy-probe
// variants (LBLP, LBLPUB) some results may carry distance bounds instead of
// exact distances; use Refine to resolve them.
func (ix *Index) AKNN(q *Object, k int, alpha float64, algo AKNNAlgorithm) ([]Result, Stats, error) {
	return ix.inner.AKNN(q, k, alpha, algo)
}

// LinearScanAKNN is the exhaustive baseline; useful for verification.
func (ix *Index) LinearScanAKNN(q *Object, k int, alpha float64) ([]Result, Stats, error) {
	return ix.inner.LinearScanAKNN(q, k, alpha)
}

// Refine probes any non-exact results and re-sorts by exact distance.
func (ix *Index) Refine(q *Object, alpha float64, rs []Result) ([]Result, Stats, error) {
	return ix.inner.Refine(q, alpha, rs)
}

// RKNN answers the range kNN query over [alphaStart, alphaEnd]: every
// object that is a kNN member somewhere in the range, with its exact
// qualifying range. Results come ordered by object id.
func (ix *Index) RKNN(q *Object, k int, alphaStart, alphaEnd float64, algo RKNNAlgorithm) ([]RangedResult, Stats, error) {
	return ix.inner.RKNN(q, k, alphaStart, alphaEnd, algo)
}

// RangeSearch answers the α-range query: every object whose α-distance to q
// is at most radius, with exact distances, ordered by (distance, id).
func (ix *Index) RangeSearch(q *Object, alpha, radius float64) ([]Result, Stats, error) {
	return ix.inner.RangeSearch(q, alpha, radius)
}

// ExpectedDistance returns the integrated distance ∫₀¹ d_α(a, b) dα — the
// classical fuzzy-set metric the paper contrasts with its α-distance
// (§2.1). Provided as an extension for single-number summaries.
func ExpectedDistance(a, b *Object) float64 {
	return fuzzy.ExpectedDist(a, b)
}

// JoinPair is one result of a join query between two indexes.
type JoinPair = query.JoinPair

// DistanceJoin returns every pair (a ∈ left, b ∈ right) with
// d_α(a, b) ≤ eps, ordered by (distance, ids) — the fuzzy ε-distance join
// the paper names as future work (§8). Pass the same index twice for a
// self-join; each unordered pair is then reported once.
func DistanceJoin(left, right *Index, alpha, eps float64) ([]JoinPair, Stats, error) {
	return query.DistanceJoin(left.inner, right.inner, alpha, eps)
}

// KClosestPairs returns the k pairs with the smallest α-distances between
// two indexes, ascending — the fuzzy k-closest-pairs query.
func KClosestPairs(left, right *Index, k int, alpha float64) ([]JoinPair, Stats, error) {
	return query.KClosestPairs(left.inner, right.inner, k, alpha)
}

// ReverseKNN returns every object that would count q among its own k
// nearest neighbors at threshold α — the reverse kNN query the paper names
// as future work (§8). Results are ordered by (distance to q, id).
func (ix *Index) ReverseKNN(q *Object, k int, alpha float64) ([]Result, Stats, error) {
	return ix.inner.ReverseKNN(q, k, alpha)
}

// ExpectedDistKNN ranks objects by the integrated distance ∫₀¹ d_α dα
// instead of a single-threshold α-distance — the classical semantics the
// paper contrasts with its queries (§2.1). Result Dist fields carry the
// expected distance. This baseline scans every object.
func (ix *Index) ExpectedDistKNN(q *Object, k int) ([]Result, Stats, error) {
	return ix.inner.ExpectedDistKNN(q, k)
}

// Object fetches a stored object by id (counted as an access, charged to
// the owning shard).
func (ix *Index) Object(id uint64) (*Object, error) {
	return ix.countings[query.ShardOf(id, len(ix.countings))].Get(id)
}
