package fuzzyknn

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"fuzzyknn/internal/fuzzy"
	"fuzzyknn/internal/query"
	"fuzzyknn/internal/replica"
)

// ReplicationConfig tunes a leader's replication feed. The zero value (or
// a nil pointer) picks the defaults.
type ReplicationConfig struct {
	// RetainFrames bounds how many committed frames the leader keeps in
	// memory for followers to tail (default 4096). A follower that falls
	// behind the window re-bootstraps from a snapshot instead.
	RetainFrames int
	// RetainBytes bounds the retained window in encoded bytes (default
	// 64 MiB). Whichever bound trips first trims the window.
	RetainBytes int64
}

// Replication is an index's leader-side replication state: the frame log
// followers tail and the snapshot cut they bootstrap from. Obtain one with
// Index.EnableReplication and hand it to the server
// (server.Options.Replication) to expose the feed over HTTP.
type Replication struct {
	ix  *Index
	rec *recordingSearcher

	snapshots int64
	snapMu    sync.Mutex // guards snapshots only
}

// EnableReplication makes the index a replication leader: every committed
// mutation — single Insert/Delete or ApplyBatch group, whether issued
// directly or through an Engine — is also appended to an in-memory frame
// log that followers tail. Call it before NewEngine and before sharing the
// index across goroutines; enabling twice is an error. The generation
// token is minted from the wall clock, so a restarted leader presents a
// new generation and followers detect the divergence.
//
// The query hot path is untouched: only the three mutation entry points
// pass through the recording wrapper.
func (ix *Index) EnableReplication(cfg *ReplicationConfig) (*Replication, error) {
	if _, ok := ix.inner.(*recordingSearcher); ok {
		return nil, fmt.Errorf("fuzzyknn: replication already enabled")
	}
	var c ReplicationConfig
	if cfg != nil {
		c = *cfg
	}
	gen := uint64(time.Now().UnixNano())
	rec := &recordingSearcher{
		Searcher: ix.inner,
		log:      replica.NewLog(gen, c.RetainFrames, c.RetainBytes),
	}
	ix.inner = rec
	return &Replication{ix: ix, rec: rec}, nil
}

// Generation returns the leader incarnation token (minted at
// EnableReplication time).
func (r *Replication) Generation() uint64 { return r.rec.log.Generation() }

// LastSeq returns the sequence of the most recently committed frame (0
// before the first replicated mutation).
func (r *Replication) LastSeq() uint64 { return r.rec.log.LastSeq() }

// OldestSeq returns the oldest retained frame sequence.
func (r *Replication) OldestSeq() uint64 { return r.rec.log.OldestSeq() }

// FramesRetained returns the current retained-window size in frames.
func (r *Replication) FramesRetained() int { return r.rec.log.FramesRetained() }

// FramesAppended returns the lifetime committed-frame total.
func (r *Replication) FramesAppended() int64 { return r.rec.log.FramesAppended() }

// Snapshots returns how many bootstrap snapshots have been cut.
func (r *Replication) Snapshots() int64 {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	return r.snapshots
}

// FramesSince returns retained encoded frames with sequence >= from
// (bounded by maxBytes) and the latest committed sequence, blocking while
// the caller is caught up until a frame arrives or ctx is done. It fails
// with replication truncation when from is outside the retained window;
// the server maps that to 410 Gone.
func (r *Replication) FramesSince(ctx context.Context, from uint64, maxBytes int) ([][]byte, uint64, error) {
	return r.rec.log.FramesSince(ctx, from, maxBytes)
}

// Snapshot cuts a consistent bootstrap snapshot: every live object (sorted
// by id) encoded together with the generation and the frame sequence the
// snapshot is valid at. The cut holds the replication write lock, so
// mutations stall for its duration — acceptable for bootstrap-sized
// indexes; larger deployments bootstrap rarely and tail cheaply. Snapshot
// reads bypass the access counters: cutting a snapshot is not a query.
func (r *Replication) Snapshot() ([]byte, error) {
	r.rec.mu.Lock()
	defer r.rec.mu.Unlock()
	objs, err := r.ix.liveObjectsUncounted()
	if err != nil {
		return nil, err
	}
	enc := replica.EncodeSnapshot(r.rec.log.Generation(), r.rec.log.LastSeq(), r.ix.Dims(), objs)
	r.snapMu.Lock()
	r.snapshots++
	r.snapMu.Unlock()
	return enc, nil
}

// recordingSearcher wraps the index's Searcher so every committed mutation
// also lands in the replication frame log, in commit order. Query methods
// pass straight through the embedded interface. The mutex serializes the
// three mutation paths with each other and with snapshot cuts so frame
// order always equals commit order.
type recordingSearcher struct {
	query.Searcher
	mu  sync.Mutex
	log *replica.Log
}

func (r *recordingSearcher) Insert(o *fuzzy.Object) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.Searcher.Insert(o); err != nil {
		return err
	}
	r.log.Append([]*fuzzy.Object{o}, nil)
	return nil
}

func (r *recordingSearcher) Delete(id uint64) (query.Stats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, err := r.Searcher.Delete(id)
	if err != nil {
		return st, err
	}
	r.log.Append(nil, []uint64{id})
	return st, nil
}

func (r *recordingSearcher) ApplyBatch(inserts []*fuzzy.Object, deletes []uint64) ([]query.Stats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, err := r.Searcher.ApplyBatch(inserts, deletes)
	if err != nil {
		// A *BatchError applied nothing; a commit-phase error is an I/O
		// fault the operator must resolve — either way no frame.
		return st, err
	}
	if len(inserts)+len(deletes) > 0 {
		r.log.Append(inserts, deletes)
	}
	return st, nil
}

// liveObjectsUncounted collects every live object sorted by id, reading
// through the uncounted side of each shard's store so the scan does not
// inflate the paper's object-access metric. Shard id lists can overlap
// (OpenIndex shards share one store), so ids are deduplicated first.
func (ix *Index) liveObjectsUncounted() ([]*fuzzy.Object, error) {
	n := len(ix.countings)
	seen := make(map[uint64]struct{})
	var ids []uint64
	for _, c := range ix.countings {
		for _, id := range c.Uncounted().IDs() {
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	objs := make([]*fuzzy.Object, len(ids))
	for i, id := range ids {
		o, err := ix.countings[query.ShardOf(id, n)].Uncounted().Get(id)
		if err != nil {
			return nil, fmt.Errorf("fuzzyknn: snapshot read id %d: %w", id, err)
		}
		objs[i] = o
	}
	return objs, nil
}

// FollowerConfig tunes a Follower. The zero value (or a nil pointer) picks
// the defaults.
type FollowerConfig struct {
	// PollWait is the long-poll budget per /replication/log request
	// (default 20s).
	PollWait time.Duration
	// MaxBytes bounds the frame bytes per poll response (default 4 MiB).
	MaxBytes int
	// Client issues the HTTP requests (default: a client with no global
	// timeout; per-request contexts bound each call).
	Client *http.Client
	// Logf receives bootstrap/reconnect log lines; nil discards.
	Logf func(format string, args ...any)
}

// ReplicaStats is a point-in-time view of a follower's replication state.
type ReplicaStats = replica.Stats

// Follower tails a leader's replication feed into this index: bootstrap
// from the leader snapshot, then one ApplyBatch — one snapshot publish per
// shard — per committed leader frame, so follower reads are
// snapshot-isolated and byte-identical to the leader at the same applied
// sequence. Drive it with Run (retries and re-bootstraps forever) or Sync
// (one converge-and-return pass). See Index.NewFollower.
type Follower struct {
	f *replica.Follower
}

// NewFollower builds a follower that feeds this index from the leader's
// base URL. The index is typically freshly created and empty
// (NewIndex(nil, ...)); a warm index is also fine — the bootstrap applies
// only the difference between its live set and the leader snapshot. The
// index must be mutable, and nothing else should mutate it while the
// follower runs: the leader's frame sequence is the only write source a
// replica can stay byte-identical under.
func (ix *Index) NewFollower(leaderURL string, cfg *FollowerConfig) (*Follower, error) {
	var c FollowerConfig
	if cfg != nil {
		c = *cfg
	}
	objs, err := ix.liveObjectsUncounted()
	if err != nil {
		return nil, err
	}
	initial := make(map[uint64]uint32, len(objs))
	for _, o := range objs {
		initial[o.ID()] = replica.ObjectCRC(o)
	}
	f, err := replica.NewFollower(leaderURL, searcherApplier{ix.inner}, initial, &replica.Options{
		Client:   c.Client,
		PollWait: c.PollWait,
		MaxBytes: c.MaxBytes,
		Logf:     c.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("fuzzyknn: %w", err)
	}
	return &Follower{f: f}, nil
}

// searcherApplier adapts a query.Searcher to the replica apply contract.
type searcherApplier struct{ s query.Searcher }

func (a searcherApplier) ApplyBatch(ins []*fuzzy.Object, dels []uint64) error {
	_, err := a.s.ApplyBatch(ins, dels)
	return err
}

// Run drives the follower until ctx ends: bootstrap (with retry/backoff),
// long-poll tail, re-bootstrap on truncation or leader generation change.
func (f *Follower) Run(ctx context.Context) error { return f.f.Run(ctx) }

// Sync bootstraps if necessary and applies frames until the follower has
// caught up with the leader's committed sequence, then returns.
func (f *Follower) Sync(ctx context.Context) error { return f.f.Sync(ctx) }

// SyncTo is Sync but stops once the applied sequence reaches seq.
func (f *Follower) SyncTo(ctx context.Context, seq uint64) error { return f.f.SyncTo(ctx, seq) }

// Stats reports the follower's replication position and lifetime counters.
func (f *Follower) Stats() ReplicaStats { return f.f.Stats() }

// Leader returns the leader base URL.
func (f *Follower) Leader() string { return f.f.Leader() }
