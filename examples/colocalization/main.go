// Colocalization analysis: a two-channel join scenario. In multi-channel
// microscopy, biologists ask which structures from one channel (say,
// nuclei) sit next to — or overlap — structures from another channel
// (vesicles), where both kinds of objects come out of probabilistic
// segmentation as fuzzy objects. That is a *spatial join over fuzzy
// objects*, the query type the paper names as follow-up work (§8).
//
// This example builds two simulated channels and runs:
//   - a distance join: all cross-channel pairs within a distance budget at
//     a confidence threshold,
//   - a k-closest-pairs query: the strongest colocalization candidates,
//   - a reverse kNN query: which vesicles "consider" a chosen nucleus one
//     of their nearest structures.
//
// Run with:
//
//	go run ./examples/colocalization
package main

import (
	"fmt"
	"log"

	"fuzzyknn"
	"fuzzyknn/internal/dataset"
)

func channel(kind dataset.Kind, n int, seed uint64) []*fuzzyknn.Object {
	p := dataset.Default(kind)
	p.N = n
	p.PointsPerObject = 200
	p.Space = 25
	p.Seed = seed
	objs, err := dataset.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	return objs
}

func main() {
	// Channel A: 150 "nuclei" (simulated segmented cells).
	// Channel B: 150 "vesicles", re-identified into a disjoint id space.
	nuclei := channel(dataset.Cells, 150, 7)
	raw := channel(dataset.Cells, 150, 8)
	vesicles := make([]*fuzzyknn.Object, len(raw))
	for i, o := range raw {
		var err error
		vesicles[i], err = fuzzyknn.NewObject(10_000+o.ID(), o.WeightedPoints())
		if err != nil {
			log.Fatal(err)
		}
	}

	idxN, err := fuzzyknn.NewIndex(nuclei, nil)
	if err != nil {
		log.Fatal(err)
	}
	idxV, err := fuzzyknn.NewIndex(vesicles, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channel A: %d nuclei, channel B: %d vesicles\n\n", idxN.Len(), idxV.Len())

	// All cross-channel pairs within 0.25 units at 60% confidence.
	const alpha, budget = 0.6, 0.25
	pairs, stats, err := fuzzyknn.DistanceJoin(idxN, idxV, alpha, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distance join (α=%.1f, ε=%.2f): %d colocalized pairs "+
		"(probed %d objects across both channels)\n", alpha, budget, len(pairs), stats.ObjectAccesses)
	for i, p := range pairs {
		if i == 8 {
			fmt.Printf("  ... %d more\n", len(pairs)-8)
			break
		}
		tag := ""
		if p.Dist == 0 {
			tag = "  (overlapping at this confidence)"
		}
		fmt.Printf("  nucleus %-4d ↔ vesicle %-6d d_α=%.4f%s\n", p.LeftID, p.RightID, p.Dist, tag)
	}

	// The 5 tightest cross-channel pairs, regardless of any distance budget.
	top, _, err := fuzzyknn.KClosestPairs(idxN, idxV, 5, alpha)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n5 closest cross-channel pairs:")
	for i, p := range top {
		fmt.Printf("  %d. nucleus %-4d ↔ vesicle %-6d d_α=%.4f\n", i+1, p.LeftID, p.RightID, p.Dist)
	}

	// Reverse view: take the nucleus from the tightest pair as the query —
	// which vesicles have it among their 3 nearest structures?
	if len(top) > 0 {
		probe, err := idxN.Object(top[0].LeftID)
		if err != nil {
			log.Fatal(err)
		}
		rev, stats, err := idxV.ReverseKNN(probe, 3, alpha)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nvesicles counting nucleus %d among their 3 nearest (of %d; %d probes):\n",
			probe.ID(), idxV.Len(), stats.ObjectAccesses)
		for _, r := range rev {
			fmt.Printf("  vesicle %-6d at d_α=%.4f\n", r.ID, r.Dist)
		}
	}
}
