// Quickstart: build a handful of fuzzy objects by hand, index them, and run
// both query types of the paper — an ad-hoc kNN query (AKNN) at a single
// probability threshold and a range kNN query (RKNN) over a threshold range.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"fuzzyknn"
)

// blob builds a small fuzzy object: a kernel point at (cx, cy) surrounded by
// rings of points whose membership decreases outward — the discrete analogue
// of the probabilistic cell masks in the paper's Figure 1.
func blob(id uint64, cx, cy float64) *fuzzyknn.Object {
	pts := []fuzzyknn.WeightedPoint{{P: fuzzyknn.Point{cx, cy}, Mu: 1.0}}
	for ring := 1; ring <= 3; ring++ {
		r := 0.3 * float64(ring)
		mu := 1.0 - 0.3*float64(ring) // 0.7, 0.4, 0.1
		for i := 0; i < 8; i++ {
			angle := 2 * math.Pi * float64(i) / 8
			pts = append(pts, fuzzyknn.WeightedPoint{
				P:  fuzzyknn.Point{cx + r*math.Cos(angle), cy + r*math.Sin(angle)},
				Mu: mu,
			})
		}
	}
	o, err := fuzzyknn.NewObject(id, pts)
	if err != nil {
		log.Fatal(err)
	}
	return o
}

func main() {
	// A small scene: four fuzzy objects at increasing distance from the
	// query, with overlapping fuzzy fringes.
	objects := []*fuzzyknn.Object{
		blob(1, 2.0, 0.0),
		blob(2, 3.0, 0.5),
		blob(3, 4.0, -1.0),
		blob(4, 8.0, 2.0),
	}
	query := blob(100, 0.0, 0.0)

	idx, err := fuzzyknn.NewIndex(objects, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// --- AKNN: "give me the 2 nearest objects, counting only points with
	// membership at least α". Raising α shrinks every object toward its
	// kernel, so distances grow and the ranking can change.
	//
	// The LBLPUB variant may identify winners purely from distance bounds
	// without reading them from storage (Exact == false); Refine resolves
	// those to exact distances when the application needs them.
	for _, alpha := range []float64{0.4, 1.0} {
		results, stats, err := idx.AKNN(query, 2, alpha, fuzzyknn.LBLPUB)
		if err != nil {
			log.Fatal(err)
		}
		exact, _, err := idx.Refine(query, alpha, results)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("AKNN k=2 at α=%.1f (search itself read %d of %d objects):\n",
			alpha, stats.ObjectAccesses, idx.Len())
		for i, r := range exact {
			fmt.Printf("  %d. object %d at d_α=%.3f\n", i+1, r.ID, r.Dist)
		}
		fmt.Println()
	}

	// --- RKNN: "for every α in [0.3, 1.0], which objects are 2NN, and on
	// which sub-ranges?" Each result reports its exact qualifying range.
	ranged, stats, err := idx.RKNN(query, 2, 0.3, 1.0, fuzzyknn.RSSICR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RKNN k=2 over α ∈ [0.3, 1.0]:")
	for _, r := range ranged {
		fmt.Printf("  object %d qualifies on %v\n", r.ID, r.Qualifying)
	}
	fmt.Printf("  (%d object accesses, %d candidates after pruning)\n",
		stats.ObjectAccesses, stats.Candidates)

	// --- The distance profile behind it all: d_α as a step function of α.
	prof := fuzzyknn.DistanceProfile(objects[0], query)
	fmt.Println("\nDistance profile of object 1 vs the query:")
	for i, level := range prof.Levels {
		fmt.Printf("  α ≤ %.2f: d_α = %.3f\n", level, prof.Dists[i])
	}
}
