// Cell-image analysis: the paper's motivating scenario (§1). A microscope
// frame is segmented into probabilistic masks — every pixel carries the
// probability of belonging to a cell — and cells become fuzzy objects. A
// biologist picks a cell and asks for its nearest neighbors at different
// confidence levels: a high threshold ranks cells by their clearly
// identified cores (kernels); a low threshold lets the blurry fringes count
// too, which can change the answer.
//
// The microscope data is simulated with the probabilistic-segmentation
// pipeline in internal/segment (see DESIGN.md for the substitution
// rationale); querying goes through the public fuzzyknn API.
//
// Run with:
//
//	go run ./examples/cellimage
package main

import (
	"fmt"
	"log"

	"fuzzyknn"
	"fuzzyknn/internal/dataset"
)

func main() {
	// A "slide" of 400 simulated cells: irregular supports, 8-bit
	// membership levels, scattered over a 30×30 field.
	params := dataset.Default(dataset.Cells)
	params.N = 400
	params.PointsPerObject = 256
	params.Space = 30
	params.Seed = 2024

	cells, err := dataset.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := fuzzyknn.NewIndex(cells, &fuzzyknn.Config{SampleSeed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// The "selected cell" under the microscope crosshair.
	probe, err := dataset.GenerateQuery(params, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slide with %d segmented cells; probing neighbors of the selected cell\n\n", idx.Len())

	// Compare the 5 nearest cells at three confidence levels. α = 0.9
	// trusts only near-certain pixels (cell cores); α = 0.3 includes the
	// fuzzy halo that probabilistic segmentation is unsure about.
	for _, alpha := range []float64{0.9, 0.6, 0.3} {
		res, stats, err := idx.AKNN(probe, 5, alpha, fuzzyknn.LBLPUB)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("5 nearest cells at confidence α=%.1f "+
			"(%d cells read from disk out of %d):\n", alpha, stats.ObjectAccesses, idx.Len())
		for i, r := range res {
			marker := ""
			if r.Dist == 0 {
				marker = "  ← overlapping halos"
			}
			fmt.Printf("  %d. cell %-4d d_α=%.4f%s\n", i+1, r.ID, r.Dist, marker)
		}
		fmt.Println()
	}

	// Which cells are 3NN at *some* confidence in [0.3, 0.9]? The
	// qualifying ranges expose results an analyst would miss by checking a
	// single threshold — exactly the paper's argument for the RKNN query.
	ranged, stats, err := idx.RKNN(probe, 3, 0.3, 0.9, fuzzyknn.RSSICR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cells in the 3NN set for some α ∈ [0.3, 0.9] "+
		"(%d candidates after pruning, %d disk reads):\n", stats.Candidates, stats.ObjectAccesses)
	for _, r := range ranged {
		fmt.Printf("  cell %-4d qualifies on %v\n", r.ID, r.Qualifying)
	}
}
