// GIS with vague regions: fuzzy objects have a long history in geographic
// information systems (§1, §7 of the paper) — think flood zones, habitat
// extents or pollution plumes, where the boundary is a matter of confidence
// rather than a crisp line. Each zone is modeled as a fuzzy region: points
// near its core are certain members, points on the fringe carry lower
// membership.
//
// This example builds a map of fuzzy hazard zones and asks, for a proposed
// facility site: "which are the 3 closest hazard zones — and how does the
// answer depend on how conservatively we draw the zones?" The RKNN query
// answers all confidence levels at once, with exact qualifying ranges.
//
// Run with:
//
//	go run ./examples/gis
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"fuzzyknn"
)

// fuzzyZone builds an irregular fuzzy region around (cx, cy): a jagged
// polygon-ish cloud whose membership decays from the core to the fringe,
// with per-zone size and decay character.
func fuzzyZone(id uint64, cx, cy, size float64, rng *rand.Rand) *fuzzyknn.Object {
	// Irregular radius per direction (a wobbly contour).
	const spokes = 12
	radii := make([]float64, spokes)
	for i := range radii {
		radii[i] = size * (0.6 + 0.8*rng.Float64())
	}
	var pts []fuzzyknn.WeightedPoint
	pts = append(pts, fuzzyknn.WeightedPoint{P: fuzzyknn.Point{cx, cy}, Mu: 1})
	for i := 0; i < 240; i++ {
		angle := rng.Float64() * 2 * math.Pi
		spoke := int(angle / (2 * math.Pi) * spokes)
		maxR := radii[spoke]
		frac := math.Sqrt(rng.Float64()) // uniform over the area
		r := frac * maxR
		// Membership decays outward with zone-specific sharpness plus noise.
		mu := math.Pow(1-frac, 0.5+rng.Float64()) // fringe ≈ 0, core ≈ 1
		mu = math.Max(mu+0.05*(rng.Float64()-0.5), 1e-3)
		mu = math.Min(mu, 1)
		// Quantize to 100 confidence levels like a published hazard raster.
		mu = math.Ceil(mu*100) / 100
		pts = append(pts, fuzzyknn.WeightedPoint{
			P:  fuzzyknn.Point{cx + r*math.Cos(angle), cy + r*math.Sin(angle)},
			Mu: mu,
		})
	}
	zone, err := fuzzyknn.NewObject(id, pts)
	if err != nil {
		log.Fatal(err)
	}
	return zone
}

func main() {
	rng := rand.New(rand.NewPCG(7, 11))
	// 60 hazard zones over a 50 km × 50 km region.
	var zones []*fuzzyknn.Object
	for i := 0; i < 60; i++ {
		zones = append(zones, fuzzyZone(
			uint64(i+1),
			rng.Float64()*50, rng.Float64()*50,
			0.8+rng.Float64()*1.6,
			rng,
		))
	}
	idx, err := fuzzyknn.NewIndex(zones, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// The proposed facility footprint: a small, crisp-ish site (tight
	// membership decay).
	site := fuzzyZone(1000, 25, 25, 0.3, rng)

	fmt.Println("proposed site at (25, 25); hazard zones indexed:", idx.Len())

	// Planning at a fixed standard: zones drawn at 50% confidence.
	res, _, err := idx.AKNN(site, 3, 0.5, fuzzyknn.LBLPUB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n3 nearest hazard zones with boundaries drawn at α=0.5:")
	for i, r := range res {
		fmt.Printf("  %d. zone %-3d distance %.2f km\n", i+1, r.ID, r.Dist)
	}

	// Regulatory sweep: every boundary standard from permissive (α=0.2,
	// wide zones) to strict (α=0.95, only the certain cores). One RKNN
	// query returns each zone's qualifying range of standards.
	ranged, stats, err := idx.RKNN(site, 3, 0.2, 0.95, fuzzyknn.RSSICR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nzones among the 3 closest for some standard α ∈ [0.2, 0.95]:")
	for _, r := range ranged {
		fmt.Printf("  zone %-3d %s  %v\n", r.ID, confidenceBar(r.Qualifying), r.Qualifying)
	}
	fmt.Printf("\n(answered with %d zone reads and %d candidates — out of %d zones)\n",
		stats.ObjectAccesses, stats.Candidates, idx.Len())

	// The full distance profile of the closest zone shows exactly when it
	// stops touching the site as the standard tightens.
	prof := fuzzyknn.DistanceProfile(zones[res[0].ID-1], site)
	fmt.Printf("\ndistance of zone %d to the site, by boundary standard:\n", res[0].ID)
	for _, alpha := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		fmt.Printf("  α=%.1f → %.2f km\n", alpha, prof.Dist(alpha))
	}
}

// confidenceBar renders the qualifying set over [0,1] as a 20-char bar,
// sampling each cell's midpoint (gaps in fragmented ranges stay visible).
func confidenceBar(s fuzzyknn.IntervalSet) string {
	const width = 20
	b := []byte("....................")
	for i := 0; i < width; i++ {
		x := (float64(i) + 0.5) / width
		if s.Contains(x) {
			b[i] = '#'
		}
	}
	return string(b)
}
