module fuzzyknn

go 1.24
