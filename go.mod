module fuzzyknn

go 1.23
