package fuzzyknn_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"fuzzyknn"
)

// TestOpenLogIndexLifecycle exercises the durable mutable index end to end:
// create, mutate, query, reopen, and verify the mutations survived.
func TestOpenLogIndexLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "objects.fzl")
	idx, err := fuzzyknn.OpenLogIndex(path, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		if err := idx.Insert(disk(i, float64(i)*2, 0)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := idx.Delete(4); err != nil {
		t.Fatal(err)
	}
	q := disk(100, 7.9, 0)
	res, _, err := idx.AKNN(q, 1, 1.0, fuzzyknn.LBLPUB)
	if err != nil {
		t.Fatal(err)
	}
	// Object 4 (kernel at x=8) was deleted; object 3 (x=6) is now closest.
	if len(res) != 1 || res[0].ID != 3 {
		t.Fatalf("nearest = %+v, want id 3", res)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := fuzzyknn.OpenLogIndex(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != 9 {
		t.Fatalf("reopened len = %d", reopened.Len())
	}
	res, _, err = reopened.AKNN(q, 1, 1.0, fuzzyknn.LBLPUB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 3 {
		t.Fatalf("after reopen: nearest = %+v, want id 3", res)
	}
	if err := reopened.Insert(disk(4, 8, 0)); err != nil {
		t.Fatalf("re-insert of deleted id after reopen: %v", err)
	}
}

// TestReadOnlyIndexRejectsMutations pins the ErrReadOnly taxonomy on
// OpenIndex-backed indexes.
func TestReadOnlyIndexRejectsMutations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "objects.fzs")
	objs := []*fuzzyknn.Object{disk(1, 2, 0), disk(2, 4, 0)}
	if err := fuzzyknn.SaveObjects(path, 2, objs); err != nil {
		t.Fatal(err)
	}
	idx, err := fuzzyknn.OpenIndex(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if err := idx.Insert(disk(3, 6, 0)); !errors.Is(err, fuzzyknn.ErrReadOnly) {
		t.Fatalf("insert: %v", err)
	}
	if err := idx.Delete(1); !errors.Is(err, fuzzyknn.ErrReadOnly) {
		t.Fatalf("delete: %v", err)
	}
}

// TestEngineBatchMutations drives BatchInsert/BatchDelete and checks the
// per-item error reporting.
func TestEngineBatchMutations(t *testing.T) {
	idx, err := fuzzyknn.NewIndex([]*fuzzyknn.Object{disk(1, 2, 0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	eng := idx.NewEngine(nil)
	defer eng.Close()

	objs := make([]*fuzzyknn.Object, 20)
	for i := range objs {
		objs[i] = disk(uint64(i+10), float64(i), float64(i))
	}
	objs[7] = disk(1, 0, 0) // collides with the seed object
	errs, err := eng.BatchInsert(context.Background(), objs)
	if err == nil {
		t.Fatal("duplicate in batch not reported")
	}
	for i, e := range errs {
		if i == 7 {
			if !errors.Is(e, fuzzyknn.ErrDuplicate) {
				t.Fatalf("item 7: %v", e)
			}
		} else if e != nil {
			t.Fatalf("item %d: %v", i, e)
		}
	}
	if idx.Len() != 20 { // 1 seed + 19 successful inserts
		t.Fatalf("len = %d", idx.Len())
	}

	ids := make([]uint64, 0, 19)
	for i := range objs {
		if i != 7 {
			ids = append(ids, objs[i].ID())
		}
	}
	ids = append(ids, 54321) // unknown
	errs, err = eng.BatchDelete(context.Background(), ids)
	if err == nil {
		t.Fatal("unknown id in batch not reported")
	}
	for i, e := range errs[:len(errs)-1] {
		if e != nil {
			t.Fatalf("delete item %d: %v", i, e)
		}
	}
	if !errors.Is(errs[len(errs)-1], fuzzyknn.ErrNotFound) {
		t.Fatalf("unknown delete: %v", errs[len(errs)-1])
	}
	if idx.Len() != 1 {
		t.Fatalf("len after deletes = %d", idx.Len())
	}

	// Totals carry the new kinds.
	totals := eng.Totals()
	if totals.Requests["insert"] != 20 || totals.Requests["delete"] != 20 {
		t.Fatalf("totals = %+v", totals.Requests)
	}
	if totals.Failures != 2 {
		t.Fatalf("failures = %d", totals.Failures)
	}
}

// TestMutableIndexKeepsPaperAccounting verifies the cost model under
// mutation: a delete charges exactly one object access (locating the
// victim), an insert charges none.
func TestMutableIndexKeepsPaperAccounting(t *testing.T) {
	idx, err := fuzzyknn.NewIndex([]*fuzzyknn.Object{disk(1, 2, 0), disk(2, 4, 0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	base := idx.TotalObjectAccesses()
	if err := idx.Insert(disk(3, 6, 0)); err != nil {
		t.Fatal(err)
	}
	if got := idx.TotalObjectAccesses(); got != base {
		t.Fatalf("insert charged %d accesses", got-base)
	}
	if err := idx.Delete(3); err != nil {
		t.Fatal(err)
	}
	if got := idx.TotalObjectAccesses(); got != base+1 {
		t.Fatalf("delete charged %d accesses, want 1", got-base)
	}
}

// TestDynamicIndexMatchesRebuilt cross-checks a mutated index against one
// built from scratch over the same final population: every query type must
// agree.
func TestDynamicIndexMatchesRebuilt(t *testing.T) {
	var final []*fuzzyknn.Object
	idx, err := fuzzyknn.NewIndex(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	for i := uint64(1); i <= 40; i++ {
		o := disk(i, float64(i%7)*1.5, float64(i%5))
		if err := idx.Insert(o); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := idx.Delete(i); err != nil {
				t.Fatal(err)
			}
		} else {
			final = append(final, o)
		}
	}
	rebuilt, err := fuzzyknn.NewIndex(final, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rebuilt.Close()
	if idx.Len() != rebuilt.Len() {
		t.Fatalf("len %d vs %d", idx.Len(), rebuilt.Len())
	}
	q := disk(999, 3, 1)
	for _, alpha := range []float64{0.3, 1.0} {
		a, _, err := idx.AKNN(q, 5, alpha, fuzzyknn.LBLPUB)
		if err != nil {
			t.Fatal(err)
		}
		a, _, err = idx.Refine(q, alpha, a)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := rebuilt.AKNN(q, 5, alpha, fuzzyknn.LBLPUB)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err = rebuilt.Refine(q, alpha, b)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("alpha %v:\n mutated: %v\n rebuilt: %v", alpha, a, b)
		}
	}
	ra, _, err := idx.RKNN(q, 3, 0.2, 0.9, fuzzyknn.RSSICR)
	if err != nil {
		t.Fatal(err)
	}
	rb, _, err := rebuilt.RKNN(q, 3, 0.2, 0.9, fuzzyknn.RSSICR)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ra) != fmt.Sprint(rb) {
		t.Fatalf("RKNN:\n mutated: %v\n rebuilt: %v", ra, rb)
	}
}
