package fuzzyknn

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

// pagedTestConfig keeps the node fanout small so even a 30-object shard
// builds a tree with interior levels — otherwise every shard is a single
// pinned root page and the block cache never fields a request.
func pagedTestConfig(shards int) *Config {
	return &Config{NodeMin: 2, NodeMax: 4, Shards: shards}
}

// pagedFixture writes a store + page files for objs and returns the paths.
func pagedFixture(t *testing.T, objs []*Object, shards int) (storePath, pagePath string) {
	t.Helper()
	dir := t.TempDir()
	storePath = filepath.Join(dir, "objects.fzs")
	pagePath = filepath.Join(dir, "index.fzp")
	if err := SaveObjects(storePath, 2, objs); err != nil {
		t.Fatal(err)
	}
	mem, err := OpenIndex(storePath, pagedTestConfig(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if err := mem.SavePaged(pagePath); err != nil {
		t.Fatal(err)
	}
	return storePath, pagePath
}

// TestPublicPagedMatchesMemory drives the public paged API end to end at 1
// and 4 shards: every query family answers byte-identically to the
// in-memory index the pages were saved from, the block cache reports
// activity, and mutations are rejected as read-only.
func TestPublicPagedMatchesMemory(t *testing.T) {
	objs, q := smallDataset(t, 120, 5)
	for _, shards := range []int{1, 4} {
		cfg := pagedTestConfig(shards)
		storePath, pagePath := pagedFixture(t, objs, shards)
		mem, err := OpenIndex(storePath, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// 1 MiB split across shards still evicts on this dataset's tree.
		paged, err := OpenPagedIndex(storePath, pagePath, 1, cfg)
		if err != nil {
			t.Fatal(err)
		}

		if paged.Len() != mem.Len() || paged.Dims() != mem.Dims() || paged.NumShards() != shards {
			t.Fatalf("shards=%d: paged %d/%dd/%d shards vs mem %d/%dd",
				shards, paged.Len(), paged.Dims(), paged.NumShards(), mem.Len(), mem.Dims())
		}

		for _, algo := range []AKNNAlgorithm{Basic, LB, LBLP, LBLPUB} {
			want, wantStats, err := mem.AKNN(q, 8, 0.5, algo)
			if err != nil {
				t.Fatal(err)
			}
			got, gotStats, err := paged.AKNN(q, 8, 0.5, algo)
			if err != nil {
				t.Fatalf("shards=%d/%v: %v", shards, algo, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d/%v: paged AKNN diverges\n got %+v\nwant %+v", shards, algo, got, want)
			}
			if got, want := gotStats.ObjectAccesses, wantStats.ObjectAccesses; got != want {
				t.Fatalf("shards=%d/%v: paged object accesses %d, want %d (logical cost must not change)",
					shards, algo, got, want)
			}
		}
		for _, algo := range []RKNNAlgorithm{Naive, BasicRKNN, RSS, RSSICR} {
			want, _, err := mem.RKNN(q, 5, 0.3, 0.8, algo)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := paged.RKNN(q, 5, 0.3, 0.8, algo)
			if err != nil {
				t.Fatalf("shards=%d/%v: %v", shards, algo, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d/%v: paged RKNN diverges", shards, algo)
			}
		}
		for label, run := range map[string]func(ix *Index) (any, error){
			"range":   func(ix *Index) (any, error) { r, _, err := ix.RangeSearch(q, 0.5, 4); return r, err },
			"reverse": func(ix *Index) (any, error) { r, _, err := ix.ReverseKNN(q, 4, 0.5); return r, err },
			"edist":   func(ix *Index) (any, error) { r, _, err := ix.ExpectedDistKNN(q, 6); return r, err },
			"linear":  func(ix *Index) (any, error) { r, _, err := ix.LinearScanAKNN(q, 8, 0.5); return r, err },
		} {
			want, err := run(mem)
			if err != nil {
				t.Fatalf("shards=%d/%s: mem: %v", shards, label, err)
			}
			got, err := run(paged)
			if err != nil {
				t.Fatalf("shards=%d/%s: paged: %v", shards, label, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d/%s: paged answer diverges", shards, label)
			}
		}

		cs, ok := paged.PageCacheStats()
		if !ok || cs.Misses == 0 || cs.Hits == 0 {
			t.Fatalf("shards=%d: cache stats ok=%v %+v, want hits and misses > 0", shards, ok, cs)
		}
		if cs.ResidentBytes > cs.CapacityBytes {
			t.Fatalf("shards=%d: resident %d exceeds capacity %d", shards, cs.ResidentBytes, cs.CapacityBytes)
		}
		if _, ok := mem.PageCacheStats(); ok {
			t.Fatalf("shards=%d: in-memory index reports a page cache", shards)
		}
		infos := paged.ShardInfo()
		if len(infos) != shards {
			t.Fatalf("shards=%d: %d shard infos", shards, len(infos))
		}
		var infoMisses int64
		for i, si := range infos {
			if si.PageCache == nil {
				t.Fatalf("shards=%d: shard %d has no page-cache info", shards, i)
			}
			infoMisses += si.PageCache.Misses
		}
		if infoMisses != cs.Misses {
			t.Fatalf("shards=%d: per-shard misses %d != total %d", shards, infoMisses, cs.Misses)
		}

		if err := paged.Insert(objs[0]); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("shards=%d: paged insert: %v, want ErrReadOnly", shards, err)
		}
		if err := paged.Delete(1); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("shards=%d: paged delete: %v, want ErrReadOnly", shards, err)
		}

		if err := paged.Close(); err != nil {
			t.Fatalf("shards=%d: close: %v", shards, err)
		}
		mem.Close()
	}
}

// TestPublicPagedObjectLRULayering checks the two caches stay distinct: the
// block cache holds index pages, the object LRU (Config.CacheSize) holds
// payloads, and each reports its own counters.
func TestPublicPagedObjectLRULayering(t *testing.T) {
	objs, q := smallDataset(t, 80, 9)
	storePath, pagePath := pagedFixture(t, objs, 1)
	paged, err := OpenPagedIndex(storePath, pagePath, 1, &Config{CacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	for i := 0; i < 3; i++ {
		if _, _, err := paged.AKNN(q, 6, 0.5, LBLPUB); err != nil {
			t.Fatal(err)
		}
	}
	pc, ok := paged.PageCacheStats()
	if !ok || pc.Hits+pc.Misses == 0 {
		t.Fatalf("page cache idle: ok=%v %+v", ok, pc)
	}
	hits, misses, ok := paged.ObjectCacheStats()
	if !ok || hits+misses == 0 {
		t.Fatalf("object LRU idle: ok=%v hits=%d misses=%d", ok, hits, misses)
	}
	if hits == 0 {
		t.Fatalf("repeated identical query produced no object-LRU hits (misses=%d)", misses)
	}

	// Without CacheSize there is no object LRU to report.
	noLRU, err := OpenPagedIndex(storePath, pagePath, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer noLRU.Close()
	if _, _, ok := noLRU.ObjectCacheStats(); ok {
		t.Fatal("ObjectCacheStats ok without Config.CacheSize")
	}
}

// TestPublicPagedMismatch rejects opening a page file against the wrong
// store.
func TestPublicPagedMismatch(t *testing.T) {
	objs, _ := smallDataset(t, 40, 3)
	_, pagePath := pagedFixture(t, objs, 1)
	other, _ := smallDataset(t, 25, 4)
	otherStore := filepath.Join(t.TempDir(), "other.fzs")
	if err := SaveObjects(otherStore, 2, other); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPagedIndex(otherStore, pagePath, 1, nil); !errors.Is(err, ErrPagedMismatch) {
		t.Fatalf("wrong store accepted: %v", err)
	}
}
